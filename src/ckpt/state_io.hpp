#pragma once
// Serialization visitors for the library's stateful types: dense/sparse
// matrices, the Xoshiro RNG, Adam moments, the GCN model, epoch-metric
// trajectories, recorded traffic, and the full TrainConfig record. These
// are the building blocks Trainer::save()/TrainerBuilder::resume() are
// assembled from; each function is the exact inverse of its partner, down
// to the bit pattern of every float.
//
// Readers validate as they go: CsrMatrix goes through the invariant-
// checking constructor, model weights are shape-checked against the
// already-constructed model, and every structural surprise throws a typed
// ckpt error naming the offending section — malformed input can reject,
// never corrupt.

#include <iosfwd>
#include <vector>

#include "ckpt/serializer.hpp"
#include "gnn/model.hpp"
#include "gnn/optimizer.hpp"
#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"
#include "simcomm/traffic.hpp"
#include "sparse/csr.hpp"

namespace sagnn::ckpt {

// Values (not sections): callers wrap these in begin/enter_section.

void write_matrix(Serializer& s, const Matrix& m);
Matrix read_matrix(Deserializer& d);

void write_csr(Serializer& s, const CsrMatrix& m);
/// Reconstructs through the validating constructor; structural violations
/// surface as CheckpointFormatError naming the current section.
CsrMatrix read_csr(Deserializer& d);

void write_rng(Serializer& s, const Rng& rng);
Rng read_rng(Deserializer& d);

void write_adam(Serializer& s, const Adam& adam);
/// Restores the moment slots into `adam` (hyperparameters stay the
/// caller's — they are configuration, not state).
void read_adam_into(Deserializer& d, Adam& adam);

void write_model(Serializer& s, const GcnModel& model);
/// Loads weights into an already-constructed model; throws
/// CheckpointMismatchError if layer count, activation flags, or weight
/// shapes disagree with the checkpoint.
void read_model_into(Deserializer& d, GcnModel& model);

void write_metrics(Serializer& s, const std::vector<EpochMetrics>& metrics);
std::vector<EpochMetrics> read_metrics(Deserializer& d);

void write_traffic(Serializer& s, const TrafficRecorder& traffic);
TrafficRecorder read_traffic(Deserializer& d);

void write_train_config(Serializer& s, const TrainConfig& cfg);
TrainConfig read_train_config(Deserializer& d);

void write_dataset_fingerprint(Serializer& s, const Dataset& ds);
/// Throws CheckpointMismatchError if `ds` is not the dataset the
/// checkpoint was taken on (name or shape differs).
void check_dataset_fingerprint(Deserializer& d, const Dataset& ds);

/// The common checkpoint prologue every trainer writes — the "config" and
/// "dataset" sections TrainerBuilder::resume() consumes before handing the
/// stream to the trainer's own restore().
void write_prologue(Serializer& s, const TrainConfig& cfg, const Dataset& ds);

/// "progress" section body: completed-epoch count + metric trajectory.
void write_progress(Serializer& s, int epoch,
                    const std::vector<EpochMetrics>& metrics);
/// Inverse of write_progress; throws CheckpointFormatError if the stored
/// count disagrees with the trajectory length.
int read_progress(Deserializer& d, std::vector<EpochMetrics>& metrics);

}  // namespace sagnn::ckpt
