// Quickstart for the unified training API: build a graph dataset, train a
// 3-layer GCN serially, then train the same model on a simulated 8-GPU
// cluster with the paper's sparsity-aware 1D algorithm + GVB partitioning,
// and confirm the two trainings agree.
//
//   $ ./quickstart
//
// Everything is selected through TrainerBuilder by registry NAME — swap
// "1d-sparse" for "1.5d-sparse" or "gvb" for "metis" (or any strategy or
// partitioner registered later) and nothing else changes.

#include <cstdio>

#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"

using namespace sagnn;

int main() {
  // 1. A synthetic "amazon-like" node-classification dataset (scaled-down
  //    analogue of the paper's Amazon co-purchase graph).
  const Dataset ds = make_amazon_sim(DatasetScale::kSmall);
  std::printf("dataset %s: %d vertices, %lld edges, %d features, %d classes\n",
              ds.name.c_str(), ds.n_vertices(),
              static_cast<long long>(ds.n_edges()), ds.n_features(),
              ds.n_classes);

  // 2. The paper's GCN: 3 layers, 16 hidden units.
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes,
                                          /*epochs=*/20);
  cfg.learning_rate = 0.3f;

  // 3. Serial reference training.
  auto serial = TrainerBuilder(ds).strategy("serial").gcn(cfg).build();
  const auto& serial_metrics = serial->train();
  std::printf("\n%-12s first-epoch loss %.4f -> last-epoch loss %.4f "
              "(train acc %.3f)\n",
              (serial->name() + ":").c_str(), serial_metrics.front().loss,
              serial_metrics.back().loss,
              serial_metrics.back().train_accuracy);

  // 4. Distributed training: sparsity-aware 1D SpMM on 8 simulated GPUs,
  //    graph partitioned by the volume-balancing (GVB-like) partitioner.
  //    Both choices are registry strings.
  CostModel cost_model;
  cost_model.volume_scale = ds.sim_scale;
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(/*p=*/8)
                     .partitioner("gvb")
                     .gcn(cfg)
                     .cost_model(cost_model)
                     .build();
  const auto& dist_metrics = trainer->train();
  const TrainResult& dist = trainer->result();
  std::printf("%-12s first-epoch loss %.4f -> last-epoch loss %.4f "
              "(train acc %.3f)\n",
              (trainer->name() + ":").c_str(), dist_metrics.front().loss,
              dist_metrics.back().loss, dist_metrics.back().train_accuracy);

  // 5. What did it cost? Exact communication volumes + alpha-beta model.
  std::printf("\nper-epoch communication:\n");
  for (const auto& [phase, vol] : dist.phase_volumes) {
    std::printf("  %-10s %8.3f MB in %.0f messages\n", phase.c_str(),
                vol.megabytes_per_epoch, vol.messages_per_epoch);
  }
  std::printf("modeled epoch time on the paper's hardware: %.3f ms\n",
              dist.modeled_epoch_seconds() * 1e3);
  std::printf("partitioning took %.3f s (one-time, amortized over training)\n",
              dist.partition_wall_seconds);

  const double drift =
      std::abs(dist_metrics.back().loss - serial_metrics.back().loss);
  std::printf("\nserial vs distributed final-loss drift: %.2e %s\n", drift,
              drift < 1e-2 ? "(OK: same math, different summation order)"
                           : "(unexpectedly large!)");
  return drift < 1e-2 ? 0 : 1;
}
