// Mini-batch (neighbor-sampled) vs full-batch GCN training — the contrast
// that motivates the paper (§1): sampling avoids distributing the graph but
// re-touches multiplied L-hop neighborhoods every epoch and adds sampling
// noise; full-batch training does exact math and turns the problem into the
// distributed-SpMM question this library solves.
//
//   $ ./minibatch_vs_fullbatch            # protein-sim
//   $ ./minibatch_vs_fullbatch amazon 20  # dataset, epochs

#include <cstdio>
#include <string>

#include "gnn/sampled_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "graph/datasets.hpp"

using namespace sagnn;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "protein";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 15;

  const Dataset ds = make_dataset(name, DatasetScale::kSmall);
  std::printf("dataset %s: %d vertices, %lld aggregation nnz\n\n",
              ds.name.c_str(), ds.n_vertices(),
              static_cast<long long>(ds.n_edges()));

  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.1f;

  // Full-batch: 2L-1 exact SpMMs per epoch, nnz work == graph nnz each.
  SerialTrainer full(ds, cfg);
  // Mini-batch: GraphSAGE-style fanout-10 sampling, batches of 512.
  SamplingConfig sampling;
  sampling.batch_size = 512;
  sampling.fanouts.assign(static_cast<std::size_t>(cfg.n_layers()), 10);
  SampledTrainer sampled(ds, cfg, sampling);

  std::printf("epoch | full-batch loss  acc | sampled loss  acc | sampled-edges/graph-nnz\n");
  for (int e = 0; e < epochs; ++e) {
    const EpochMetrics fm = full.run_epoch();
    const SampledEpochMetrics sm = sampled.run_epoch_detailed();
    std::printf("%5d | %10.4f  %5.3f | %8.4f  %5.3f | %8.2fx\n", e, fm.loss,
                fm.train_accuracy, sm.loss, sm.train_accuracy,
                static_cast<double>(sm.sampled_edges) / ds.n_edges());
  }

  const LossStats sampled_eval = sampled.evaluate();
  std::printf("\nfull-graph evaluation of the sampled model: loss %.4f acc %.3f\n",
              sampled_eval.mean_loss(), sampled_eval.accuracy());
  std::printf(
      "\nReading guide: the last column is the per-epoch aggregation work of\n"
      "sampling relative to ONE full-graph SpMM — mini-batching does not\n"
      "remove the compute, it shuffles it into irregular gathers, and its\n"
      "loss curve is noisier. That is the paper's case for scaling\n"
      "full-batch training with sparsity-aware communication instead.\n");
  return 0;
}
