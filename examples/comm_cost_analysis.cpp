// Communication-cost what-if analysis: take one dataset, sweep process
// counts, and decompose WHERE the bytes go under each scheme — the tool a
// practitioner would use to decide whether sparsity-aware communication and
// a better partitioner are worth it for their graph before buying GPU
// hours.
//
//   $ ./comm_cost_analysis            # protein-sim
//   $ ./comm_cost_analysis amazon

#include <iostream>
#include <string>

#include "bench_support/experiment.hpp"
#include "bench_support/tableio.hpp"
#include "graph/datasets.hpp"
#include "partition/metrics.hpp"

using namespace sagnn;

int main(int argc, char** argv) {
  if (handle_list_flag(argc, argv)) return 0;
  const std::string name = argc > 1 ? argv[1] : "protein";
  const Dataset ds = make_dataset(name, DatasetScale::kSmall);
  std::cout << "communication what-if for " << ds.name << " (n="
            << ds.n_vertices() << ", nnz=" << ds.n_edges() << ", f="
            << ds.n_features() << ")\n\n";

  // Static analysis: what does each partitioner predict, before running
  // anything? This is pure graph analysis — no cluster needed.
  std::cout << "static volume model (rows of H crossing parts, per SpMM):\n";
  Table predict({"p", "partitioner", "total rows", "max send", "imbalance %"});
  for (int p : {8, 32}) {
    for (const char* part_name : {"random", "metis", "gvb"}) {
      const auto part = make_partitioner(part_name)->partition(ds.adjacency, p);
      const auto stats = compute_volume_stats(ds.adjacency, part);
      predict.add_row({std::to_string(p), part_name,
                       std::to_string(stats.total_rows()),
                       std::to_string(stats.max_send_rows()),
                       Table::num(stats.send_imbalance_percent(), 3)});
    }
  }
  predict.print(std::cout);

  // Dynamic confirmation: run two epochs on the simulated cluster and
  // report measured bytes + modeled times per scheme.
  std::cout << "\nmeasured per-epoch traffic and modeled time:\n";
  Table measured({"p", "scheme", "comm MB/epoch", "modeled ms/epoch"});
  struct Scheme {
    const char* label;
    const char* strategy;
    const char* partitioner;
  };
  for (int p : {8, 32}) {
    for (const Scheme& s : {Scheme{"oblivious", "1d-oblivious", "block"},
                            Scheme{"SA", "1d-sparse", "block"},
                            Scheme{"SA+GVB", "1d-sparse", "gvb"}}) {
      ExperimentSpec spec;
      spec.strategy = s.strategy;
      spec.partitioner = s.partitioner;
      spec.p = p;
      const auto r = run_experiment(ds, spec);
      double mb = 0;
      for (const auto& [phase, vol] : r.phase_volumes) {
        mb += vol.megabytes_per_epoch;
      }
      measured.add_row({std::to_string(p), s.label, Table::num(mb, 4),
                        Table::num(r.modeled_epoch_seconds() * 1e3, 4)});
    }
  }
  measured.print(std::cout);

  std::cout << "\nHow to read this: if 'SA+GVB' cuts comm MB by 10x or more\n"
               "versus 'oblivious', your graph has exploitable structure and\n"
               "the paper's approach will scale; if 'SA' is close to\n"
               "'oblivious', the graph is too well-mixed for sparsity to\n"
               "help without reordering.\n";
  return 0;
}
