// Distributed-training workbench: run any (dataset, strategy, partitioner,
// p, c) combination from the command line and get the full training report
// — the programmatic analogue of the paper's experiment runner.
//
//   $ ./distributed_training                          # defaults
//   $ ./distributed_training reddit 1d-sparse gvb 16
//   $ ./distributed_training protein 1.5d-sparse gvb 32 4
//
// The strategy and partitioner arguments are REGISTRY names, passed
// through verbatim: every registered implementation is runnable from here
// with no parsing code to update. Unknown names fail with a message
// listing the registered choices.
//
// Strategies:   1d-oblivious | 1d-sparse | 1d-overlap | 1.5d-oblivious
//               | 1.5d-sparse | 1.5d-overlap | 2d-oblivious | 2d-sparse
//               | 3d   (2D: square p; 3D: p = q^2 * c, c is the depth)
// Partitioners: block | random | metis | gvb
//
// `--list` prints the live registry catalogs (canonical names + aliases)
// and exits — the authoritative version of the comment above.
//
// c defaults to 1; pass it explicitly (e.g. "... 32 4") to exercise 1.5D
// replication — with c=1 the 1.5D algorithms degenerate to the 1D layout
// (and the 3D strategy to 2D). The banner echoes the effective c. A sixth
// argument sets the column chunk count for the pipelined strategies
// (default 4).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_support/experiment.hpp"
#include "graph/datasets.hpp"

using namespace sagnn;

int main(int argc, char** argv) {
  if (handle_list_flag(argc, argv)) return 0;
  const std::string dataset = argc > 1 ? argv[1] : "amazon";
  const std::string strategy = argc > 2 ? argv[2] : "1d-sparse";
  const std::string partitioner = argc > 3 ? argv[3] : "gvb";
  const int p = argc > 4 ? std::atoi(argv[4]) : 8;
  const int c = argc > 5 ? std::atoi(argv[5]) : 1;
  const int chunks = argc > 6 ? std::atoi(argv[6]) : 4;

  try {
    const Dataset ds = make_dataset(dataset, DatasetScale::kSmall);
    ExperimentSpec spec;
    spec.strategy = strategy;
    spec.partitioner = partitioner;
    spec.p = p;
    spec.c = c;  // only the 1.5D family reads it; others ignore c
    spec.pipeline_chunks = chunks;  // only the pipelined strategies read it
    spec.epochs = 10;
    spec.gcn.learning_rate = 0.3f;

    std::printf("== %s | %s | partitioner=%s | p=%d c=%d ==\n",
                ds.name.c_str(), strategy.c_str(), partitioner.c_str(), spec.p,
                spec.c);
    const TrainResult r = run_experiment(ds, spec);

    std::printf("\nepoch  loss      train-acc\n");
    for (std::size_t e = 0; e < r.epochs.size(); ++e) {
      std::printf("%5zu  %-8.4f  %.3f\n", e, r.epochs[e].loss,
                  r.epochs[e].train_accuracy);
    }

    std::printf("\npartitioning: %.3fs wall, edgecut=%lld, "
                "max-send=%llu rows, volume imbalance=%.1f%%\n",
                r.partition_wall_seconds,
                static_cast<long long>(r.volume_model.edgecut),
                static_cast<unsigned long long>(r.volume_model.max_send_rows()),
                r.volume_model.send_imbalance_percent());
    std::printf("one-time setup exchange: %.3f MB\n", r.setup_megabytes);
    std::printf("\nper-epoch traffic:\n");
    for (const auto& [phase, vol] : r.phase_volumes) {
      std::printf("  %-12s %9.3f MB  %7.0f msgs\n", phase.c_str(),
                  vol.megabytes_per_epoch, vol.messages_per_epoch);
    }
    const EpochCost& m = r.modeled_epoch;
    std::printf("\nmodeled epoch time %.3f ms = compute %.3f + alltoall %.3f "
                "+ bcast %.3f + allreduce %.3f + other %.3f\n",
                m.total() * 1e3, m.compute * 1e3, m.alltoall * 1e3,
                m.bcast * 1e3, m.allreduce * 1e3, m.other * 1e3);
    std::printf("schedule columns: bulk %.3f ms | pipelined(%d) %.3f ms | "
                "overlap bound %.3f ms\n",
                r.modeled_epoch_seconds() * 1e3, r.pipeline_stages,
                r.modeled_epoch_pipelined_seconds() * 1e3,
                r.modeled_epoch_overlapped_seconds() * 1e3);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
