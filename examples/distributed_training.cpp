// Distributed-training workbench: run any (dataset, algorithm, partitioner,
// p, c) combination from the command line and get the full training report
// — the programmatic analogue of the paper's experiment runner.
//
//   $ ./distributed_training                          # defaults
//   $ ./distributed_training reddit 1d-sparse gvb 16
//   $ ./distributed_training protein 1.5d-sparse gvb 32 4
//
// Algorithms: 1d-oblivious | 1d-sparse | 1.5d-oblivious | 1.5d-sparse
//             | 2d-oblivious | 2d-sparse   (2D needs a square p)
// Partitioners: block | random | metis | gvb

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gnn/dist_trainer.hpp"
#include "graph/datasets.hpp"

using namespace sagnn;

namespace {

DistAlgo parse_algo(const std::string& s) {
  if (s == "1d-oblivious") return DistAlgo::k1dOblivious;
  if (s == "1d-sparse") return DistAlgo::k1dSparse;
  if (s == "1.5d-oblivious") return DistAlgo::k15dOblivious;
  if (s == "1.5d-sparse") return DistAlgo::k15dSparse;
  if (s == "2d-oblivious") return DistAlgo::k2dOblivious;
  if (s == "2d-sparse") return DistAlgo::k2dSparse;
  throw Error("unknown algorithm: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "amazon";
  const std::string algo_str = argc > 2 ? argv[2] : "1d-sparse";
  const std::string partitioner = argc > 3 ? argv[3] : "gvb";
  const int p = argc > 4 ? std::atoi(argv[4]) : 8;
  const int c = argc > 5 ? std::atoi(argv[5]) : 1;

  try {
    const Dataset ds = make_dataset(dataset, DatasetScale::kSmall);
    DistTrainerOptions opt;
    opt.algo = parse_algo(algo_str);
    opt.partitioner = partitioner;
    opt.p = p;
    opt.c = is_15d(opt.algo) ? std::max(c, 2) : 1;
    opt.gcn = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, 10);
    opt.gcn.learning_rate = 0.3f;
    // Model times as if the graph were its full-size counterpart.
    opt.cost_model.volume_scale = ds.sim_scale;

    std::printf("== %s | %s | partitioner=%s | p=%d c=%d ==\n",
                ds.name.c_str(), to_string(opt.algo), partitioner.c_str(),
                opt.p, opt.c);
    const DistTrainerResult r = train_distributed(ds, opt);

    std::printf("\nepoch  loss      train-acc\n");
    for (std::size_t e = 0; e < r.epochs.size(); ++e) {
      std::printf("%5zu  %-8.4f  %.3f\n", e, r.epochs[e].loss,
                  r.epochs[e].train_accuracy);
    }

    std::printf("\npartitioning: %.3fs wall, edgecut=%lld, "
                "max-send=%llu rows, volume imbalance=%.1f%%\n",
                r.partition_wall_seconds,
                static_cast<long long>(r.volume_model.edgecut),
                static_cast<unsigned long long>(r.volume_model.max_send_rows()),
                r.volume_model.send_imbalance_percent());
    std::printf("one-time setup exchange: %.3f MB\n", r.setup_megabytes);
    std::printf("\nper-epoch traffic:\n");
    for (const auto& [phase, vol] : r.phase_volumes) {
      std::printf("  %-12s %9.3f MB  %7.0f msgs\n", phase.c_str(),
                  vol.megabytes_per_epoch, vol.messages_per_epoch);
    }
    const EpochCost& m = r.modeled_epoch;
    std::printf("\nmodeled epoch time %.3f ms = compute %.3f + alltoall %.3f "
                "+ bcast %.3f + allreduce %.3f + other %.3f\n",
                m.total() * 1e3, m.compute * 1e3, m.alltoall * 1e3,
                m.bcast * 1e3, m.allreduce * 1e3, m.other * 1e3);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
