// Partition explorer: compare the four partitioners on any graph — either
// a bundled synthetic dataset or a Matrix Market file — across part counts,
// reporting the metrics that drive sparsity-aware communication: edgecut,
// total volume, max send volume, volume imbalance, compute imbalance.
//
//   $ ./partition_explorer                       # amazon-sim, k = 4..64
//   $ ./partition_explorer protein 16            # one dataset, one k
//   $ ./partition_explorer /path/to/graph.mtx 32 # your own matrix

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_support/tableio.hpp"
#include "common/timer.hpp"
#include "graph/datasets.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "sparse/io_mtx.hpp"

using namespace sagnn;

namespace {

CsrMatrix load_graph(const std::string& spec) {
  if (spec.find(".mtx") != std::string::npos) {
    CooMatrix coo = read_matrix_market_file(spec);
    coo.symmetrize();
    return CsrMatrix::from_coo(coo);
  }
  return make_dataset(spec, DatasetScale::kSmall).adjacency;
}

void explore(const CsrMatrix& a, int k) {
  std::cout << "\n-- k = " << k << " parts --\n";
  Table table({"partitioner", "edgecut", "total rows", "max send rows",
               "vol imbalance %", "nnz imbalance", "seconds"});
  for (const char* name : {"block", "random", "metis", "gvb"}) {
    WallTimer timer;
    const auto part = make_partitioner(name)->partition(a, k);
    const double secs = timer.seconds();
    const auto stats = compute_volume_stats(a, part);
    table.add_row({name, std::to_string(stats.edgecut),
                   std::to_string(stats.total_rows()),
                   std::to_string(stats.max_send_rows()),
                   Table::num(stats.send_imbalance_percent(), 3),
                   Table::num(compute_load_imbalance(a, part), 3),
                   Table::num(secs, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "amazon";
  CsrMatrix a;
  try {
    a = load_graph(spec);
  } catch (const Error& e) {
    std::fprintf(stderr, "failed to load '%s': %s\n", spec.c_str(), e.what());
    return 1;
  }
  std::cout << "graph: " << spec << "  n=" << a.n_rows() << "  nnz=" << a.nnz()
            << "\n";
  if (argc > 2) {
    explore(a, std::atoi(argv[2]));
  } else {
    for (int k : {4, 16, 64}) explore(a, k);
  }
  std::cout << "\nReading guide: 'metis' minimizes total volume only;\n"
               "'gvb' additionally minimizes max send rows — compare the\n"
               "'max send rows' column to see the paper's §5 effect.\n";
  return 0;
}
