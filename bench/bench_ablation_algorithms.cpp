// Ablation: 1D vs 1.5D vs 2D decompositions under the same sparsity-aware
// treatment and partitioner. Reproduces CAGNET's design rationale that the
// paper inherits (§4: "We focus on 1D and 1.5D algorithms as they
// outperformed other algorithms (e.g. 2D and 3D) in CAGNET") — the 2D
// algorithm's Z all-reduce cannot be shrunk by sparsity, so for tall-skinny
// GNN workloads it loses to sparsity-aware 1D at scale.

#include <iostream>

#include "bench_common.hpp"
#include "dist/spmm_2d.hpp"
#include "simcomm/cluster.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

/// One epoch-equivalent of 2D SpMMs (the trainer only supports 1D/1.5D, so
/// the 2D cost is measured on the raw SpMM chain: 5 multiplies = 3 forward
/// + 2 backward, matching the 3-layer GCN).
EpochCost run_2d_epoch(const Dataset& ds, int p, SpmmMode mode) {
  const SquareGrid grid = SquareGrid::make(p);
  const auto ranges = uniform_block_ranges(ds.n_vertices(), grid.q);
  Cluster cluster(p);
  std::vector<double> cpu(static_cast<std::size_t>(p), 0.0);
  cluster.run([&](Comm& comm) {
    DistSpmm2d spmm_dist(comm, ds.adjacency, ranges, mode);
    const BlockRange in = spmm_dist.input_range();
    Matrix local = ds.features.slice_rows(in.begin, in.end);
    double* secs = &cpu[static_cast<std::size_t>(comm.rank())];
    for (int i = 0; i < 5; ++i) {
      Matrix z = spmm_dist.multiply(local, secs);
      local = spmm_dist.remap_for_next(z);
    }
  });
  CostModel model;
  model.volume_scale = ds.sim_scale;
  return epoch_cost(model, cluster.traffic(), cpu);
}

}  // namespace

int main(int argc, char** argv) {
  if (handle_list_flag(argc, argv)) return 0;
  preamble("Ablation — decomposition choice (1D vs 1.5D vs 2D)",
           "Same dataset, sparsity-aware everywhere; perfect-square process\n"
           "counts so the 2D grid exists. '2D' covers the 5 SpMMs of a\n"
           "3-layer GCN epoch (no dense layer compute).");

  for (const char* name : {"amazon", "protein"}) {
    const Dataset ds = make_dataset(name, DatasetScale::kSmall);
    print_banner(std::cout, ds.name);
    Table table({"p", "1D SA+GVB ms", "1.5D c=2 SA+GVB ms", "2D SA ms",
                 "2D allreduce ms"});
    for (int p : {16, 64, 256}) {
      const auto d1 = run_scheme(ds, kSaGvb1d, p);
      const auto d15 = run_scheme(
          ds, SchemeSpec{"", "1.5d-sparse", "gvb"}, p, /*c=*/2);
      const EpochCost d2 = run_2d_epoch(ds, p, SpmmMode::kSparsityAware);
      table.add_row({std::to_string(p), ms(d1.modeled_epoch_seconds()),
                     ms(d15.modeled_epoch_seconds()), ms(d2.total()),
                     ms(d2.allreduce)});
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: the 2D column is dominated by its all-reduce\n"
               "(sparsity-independent), so sparsity-aware 1D/1.5D win —\n"
               "the reason the paper builds on those decompositions.\n";
  return 0;
}
