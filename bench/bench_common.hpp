#pragma once
// Shared helpers for the figure/table reproduction benches: a uniform way
// to run one (dataset, algorithm, partitioner, p, c) configuration and
// collect modeled epoch costs + exact volumes.
//
// Every bench prints the paper-shaped table on stdout. Absolute times come
// from the alpha-beta cost model (see DESIGN.md §2); the claims being
// reproduced are the *relative* shapes: who wins, by what factor, and where
// the crossovers sit.

#include <iostream>
#include <map>
#include <string>

#include "bench_support/tableio.hpp"
#include "gnn/dist_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn::bench {

struct SchemeSpec {
  std::string label;        // e.g. "CAGNET", "SA", "SA+GVB"
  DistAlgo algo;
  std::string partitioner;  // block | random | metis | gvb
};

inline const SchemeSpec kCagnet1d{"CAGNET", DistAlgo::k1dOblivious, "block"};
inline const SchemeSpec kSa1d{"SA", DistAlgo::k1dSparse, "block"};
inline const SchemeSpec kSaMetis1d{"SA+METIS", DistAlgo::k1dSparse, "metis"};
inline const SchemeSpec kSaGvb1d{"SA+GVB", DistAlgo::k1dSparse, "gvb"};

inline DistTrainerResult run_scheme(const Dataset& ds, const SchemeSpec& scheme,
                                    int p, int c = 1, int epochs = 2) {
  DistTrainerOptions opt;
  opt.algo = scheme.algo;
  opt.partitioner = scheme.partitioner;
  opt.p = p;
  opt.c = c;
  opt.gcn = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  // Calibrate the cost model to the full-size dataset this analogue stands
  // for (see Dataset::sim_scale / CostModel::volume_scale).
  opt.cost_model.volume_scale = ds.sim_scale;
  return train_distributed(ds, opt);
}

/// Milliseconds with 4 significant digits, for table cells.
inline std::string ms(double seconds) { return Table::num(seconds * 1e3, 4); }

inline void preamble(const std::string& what, const std::string& note) {
  std::cout << "\n######## " << what << " ########\n" << note << "\n";
}

}  // namespace sagnn::bench
