#pragma once
// Shared helpers for the figure/table reproduction benches: a uniform way
// to run one (dataset, strategy, partitioner, p, c) configuration and
// collect modeled epoch costs + exact volumes. All configuration selection
// is by registry NAME through the shared run_experiment() helper
// (src/bench_support/experiment.hpp) — the benches carry no trainer wiring
// of their own.
//
// Every bench prints the paper-shaped table on stdout. Absolute times come
// from the alpha-beta cost model; the claims being reproduced are the
// *relative* shapes: who wins, by what factor, and where the crossovers sit.

#include <iostream>
#include <map>
#include <string>

#include "bench_support/experiment.hpp"
#include "bench_support/tableio.hpp"
#include "graph/datasets.hpp"

namespace sagnn::bench {

struct SchemeSpec {
  std::string label;        // e.g. "CAGNET", "SA", "SA+GVB"
  std::string strategy;     // distribution-strategy registry name
  std::string partitioner;  // partitioner registry name
};

inline const SchemeSpec kCagnet1d{"CAGNET", "1d-oblivious", "block"};
inline const SchemeSpec kSa1d{"SA", "1d-sparse", "block"};
inline const SchemeSpec kSaMetis1d{"SA+METIS", "1d-sparse", "metis"};
inline const SchemeSpec kSaGvb1d{"SA+GVB", "1d-sparse", "gvb"};

inline TrainResult run_scheme(const Dataset& ds, const SchemeSpec& scheme,
                              int p, int c = 1, int epochs = 2) {
  ExperimentSpec spec;
  spec.strategy = scheme.strategy;
  spec.partitioner = scheme.partitioner;
  spec.p = p;
  spec.c = c;
  spec.epochs = epochs;
  return run_experiment(ds, spec);
}

/// Milliseconds with 4 significant digits, for table cells.
inline std::string ms(double seconds) { return Table::num(seconds * 1e3, 4); }

inline void preamble(const std::string& what, const std::string& note) {
  std::cout << "\n######## " << what << " ########\n" << note << "\n";
}

}  // namespace sagnn::bench
