// Reproduces Figure 7: 1.5D results on Amazon and Protein with replication
// factors c = 2 and c = 4, p = 16..256, for sparsity-oblivious,
// sparsity-aware, and sparsity-aware + GVB partitioning.
//
// Expected shapes (paper §7.2):
//   * Plain SA does NOT beat the oblivious 1.5D algorithm: the all-reduce
//     dominates once the broadcast is shrunk, so the saving is muted.
//   * SA+GVB clearly wins on both datasets.
//   * With partitioning, the runtime curve has a minimum: k = p/c
//     partitions help until the edgecut stops improving, after which more
//     processes only add latency/all-reduce cost.

#include <iostream>

#include "bench_common.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

const SchemeSpec kObl15{"1.5D-oblivious", "1.5d-oblivious", "block"};
const SchemeSpec kSa15{"1.5D-SA", "1.5d-sparse", "block"};
const SchemeSpec kSaGvb15{"1.5D-SA+GVB", "1.5d-sparse", "gvb"};

void run_dataset(const Dataset& ds, int c, const std::vector<int>& ps) {
  print_banner(std::cout, ds.name + "  c=" + std::to_string(c));
  Table table({"p", "oblivious ms", "SA ms", "SA+GVB ms", "SA/obl",
               "SA+GVB/obl"});
  for (int p : ps) {
    if (p % (c * c) != 0) continue;
    const auto obl = run_scheme(ds, kObl15, p, c);
    const auto sa = run_scheme(ds, kSa15, p, c);
    const auto gvb = run_scheme(ds, kSaGvb15, p, c);
    const double to = obl.modeled_epoch_seconds();
    const double ts = sa.modeled_epoch_seconds();
    const double tg = gvb.modeled_epoch_seconds();
    table.add_row({std::to_string(p), ms(to), ms(ts), ms(tg),
                   Table::num(ts / to, 3), Table::num(tg / to, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  preamble("Figure 7 — 1.5D scaling (c = 2, 4)",
           "Modeled epoch time; k = p/c partitions for the GVB rows.");
  const Dataset amazon = make_amazon_sim(DatasetScale::kSmall);
  const Dataset protein = make_protein_sim(DatasetScale::kSmall);
  for (int c : {2, 4}) {
    run_dataset(amazon, c, {16, 32, 64, 128, 256});
    run_dataset(protein, c, {16, 32, 64, 128, 256});
  }
  std::cout << "\nShape check: SA/obl near or above 1 (all-reduce dominates);\n"
               "SA+GVB/obl below 1; GVB curve bottoms out at a dataset-\n"
               "dependent p and rises after.\n";
  return 0;
}
