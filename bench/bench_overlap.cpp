// Chunked-pipelining overlap sweep: how much of the idealized
// communication/computation overlap gap (EpochCost::total_overlapped(),
// the asynchronous bound of Selvitopi et al.) does the "1d-overlap"
// strategy's K-chunk schedule actually recover?
//
// For each (dataset, p, K) the run records real chunked traffic
// ("alltoall#0".."alltoall#K-1"), and the cost model reports three
// schedule columns:
//   bulk    — bulk-synchronous total(), the paper's execution model;
//   pipe    — total_pipelined(K), the critical path of the K-stage
//             software pipeline over the traffic actually moved;
//   ideal   — total_overlapped(), the full-overlap lower bound.
// The compute term of every row is pinned to the K='sparse' baseline's
// measurement: the local SpMM work is identical across K (same matrix,
// same partition), so re-measuring it per row would only inject
// ThreadCpuTimer noise into what is otherwise a deterministic comparison
// (the comm terms come from exact recorded traffic).
//
// "recovered" is how much of the BASELINE's overlap gap the pipelined
// schedule nets: (bulk_sparse - pipe_K) / (bulk_sparse - ideal_sparse).
// Raising K shrinks the serialized head of the pipeline but multiplies
// per-pair message counts (the alpha term), so recovery peaks at a finite
// chunk count and can go negative when latency swamps the overlap win.
//
// Self-asserted invariants (exit 1 on violation, so CI can gate on this
// binary): every 1d-overlap row must actually run the configured K
// stages and move exactly the baseline's alltoall bytes — chunking must
// change the schedule, never the payload.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

void run_dataset(const Dataset& ds, const std::vector<int>& ps,
                 const std::vector<int>& chunk_counts) {
  print_banner(std::cout, ds.name);
  Table table({"p", "K", "alltoall MB", "msgs", "bulk ms", "pipe ms",
               "ideal ms", "recovered %"});
  for (int p : ps) {
    double baseline_compute = 0, baseline_bulk = 0, baseline_gap = 0;
    double baseline_a2a_mb = 0;
    for (int k : chunk_counts) {
      ExperimentSpec spec;
      spec.strategy = k == 0 ? "1d-sparse" : "1d-overlap";
      spec.partitioner = "gvb";
      spec.p = p;
      spec.pipeline_chunks = std::max(1, k);
      const TrainResult r = run_experiment(ds, spec);
      const auto& a2a = r.phase_volumes.at("alltoall");

      // Pin the (noisy, re-measured) compute term to the baseline row;
      // the comm terms are exact. See the header comment.
      EpochCost cost = r.modeled_epoch;
      if (k == 0) {
        baseline_compute = cost.compute;
        baseline_a2a_mb = a2a.megabytes_per_epoch;
      } else {
        cost.compute = baseline_compute;
        // Chunk counts clamp to each layer's feature width; with derived
        // dims {f, 16, 16, classes} the widest propagated matrix has
        // max(f, 16) columns, so that bounds the deepest stage count.
        const int expected =
            std::min(k, std::max(static_cast<int>(ds.n_features()), 16));
        if (r.pipeline_stages != expected) {
          std::cerr << "SCHEDULE VIOLATION: configured " << k
                    << " chunks (expected " << expected << " stages) but ran "
                    << r.pipeline_stages << " stages\n";
          std::exit(1);
        }
        if (a2a.megabytes_per_epoch != baseline_a2a_mb) {
          std::cerr << "PAYLOAD VIOLATION: chunked alltoall moved "
                    << a2a.megabytes_per_epoch << " MB vs baseline "
                    << baseline_a2a_mb << " MB\n";
          std::exit(1);
        }
      }
      const double bulk = cost.total();
      const double pipe = cost.total_pipelined(r.pipeline_stages);
      const double ideal = cost.total_overlapped();
      if (k == 0) {
        baseline_bulk = bulk;
        baseline_gap = bulk - ideal;
      }
      const double recovered =
          baseline_gap > 0 ? (baseline_bulk - pipe) / baseline_gap * 100.0 : 0.0;
      table.add_row({std::to_string(p),
                     k == 0 ? "sparse" : std::to_string(r.pipeline_stages),
                     Table::num(a2a.megabytes_per_epoch, 4),
                     Table::num(a2a.messages_per_epoch, 4), ms(bulk), ms(pipe),
                     ms(ideal), Table::num(recovered, 3)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  preamble("Overlap — chunked-pipelining schedule sweep",
           "K = 'sparse' is the bulk-synchronous 1d-sparse baseline; K >= 1\n"
           "is 1d-overlap with K column chunks. All rows share the gvb\n"
           "partitioner. pipe must sit between ideal and bulk everywhere;\n"
           "'recovered' nets the pipelined time against the BASELINE's gap.");
  const std::vector<int> chunk_counts{0, 1, 2, 4, 8, 16};
  run_dataset(make_amazon_sim(DatasetScale::kTiny), {4, 8}, chunk_counts);
  run_dataset(make_reddit_sim(DatasetScale::kTiny), {8}, chunk_counts);
  std::cout << "\nShape check: 'pipe' falls from 'bulk' toward 'ideal' as K\n"
               "grows; 'recovered' trails the schedule-only 1 - 1/K because\n"
               "the K-fold message count inflates 'bulk' itself (visible as\n"
               "the slowly rising bulk column). At these tiny p the latency\n"
               "tax is a few percent; at paper scale (p = 256) it is what\n"
               "caps the useful chunk depth.\n";
  return 0;
}
