// Chunked-pipelining overlap sweep: how much of the idealized
// communication/computation overlap gap (EpochCost::total_overlapped(),
// the asynchronous bound of Selvitopi et al.) does the "1d-overlap"
// strategy's K-chunk schedule actually recover?
//
// For each (dataset, p, K) the run records real chunked traffic
// ("alltoall#0".."alltoall#K-1"), and the cost model reports three
// schedule columns:
//   bulk    — bulk-synchronous total(), the paper's execution model;
//   pipe    — total_pipelined(K), the critical path of the K-stage
//             software pipeline over the traffic actually moved;
//   ideal   — total_overlapped(), the full-overlap lower bound.
// The compute term of every row is pinned to the K='sparse' baseline's
// measurement: the local SpMM work is identical across K (same matrix,
// same partition), so re-measuring it per row would only inject
// ThreadCpuTimer noise into what is otherwise a deterministic comparison
// (the comm terms come from exact recorded traffic).
//
// "recovered" is how much of the BASELINE's overlap gap the pipelined
// schedule nets: (bulk_sparse - pipe_K) / (bulk_sparse - ideal_sparse).
// Raising K shrinks the serialized head of the pipeline but multiplies
// per-pair message counts (the alpha term), so recovery peaks at a finite
// chunk count and can go negative when latency swamps the overlap win.
//
// Since the runtime went request-based, every row also carries a MEASURED
// overlap column: the wall-clock post->wait decomposition the exchanges
// themselves recorded (TrainResult::measured_overlap_fraction(), hidden /
// (hidden + blocked) seconds). The model counterpart of that fraction is
// the schedule-only 1 - 1/stages; "gap pp" is measured minus model in
// percentage points, and the JSON artifact carries all three per record
// (measured_hidden_pct / model_hidden_pct / gap_pct) so CI can trend the
// model-vs-measured agreement. Bulk rows keep a near-zero measured
// fraction — their exchange is waited immediately after posting — which
// is the built-in control that the measurement reacts to the schedule.
//
// The two columns agree only where the executed depth matches the
// modeled depth: the runtime holds ONE exchange in flight (depth-2
// double buffering), so at K = 2 measured tracks the model's 50%; at
// deeper K the analytic fraction keeps climbing while the wall-clock
// measurement saturates at the straggler/scheduler bound of the host
// (the JSON's gap_pct column tracks exactly that divergence). The CI
// assert therefore gates the K = 2 point, where a regression that stops
// posting ahead collapses measured to the bulk row's near-zero.
//
// The scale table attributes that saturation explicitly: 'tail ms' is
// the single worst blocked wait of the run (the measured straggler
// bound, EpochCost::measured_max_blocked) and 'rt/to' are the fault
// layer's retry/timeout counters — asserted ZERO on these fault-free
// runs, so the gap column is provably a host-scheduler readout and not
// injected-fault pollution. Both land in the JSON artifact (tail_ms,
// retries, timeouts, straggler_ms).
//
// Self-asserted invariants (exit 1 on violation, so CI can gate on this
// binary): every 1d-overlap row must actually run the configured K
// stages and move exactly the baseline's alltoall bytes — chunking must
// change the schedule, never the payload.
//
// The second half is the LATENCY-REGIME sweep (BENCH_overlap_scale.json,
// a CI artifact): both pipelined strategies ("1d-overlap" and the
// cross-layer "1.5d-overlap") at p in {8, 64, 256} x K in {1..16} on
// reddit-sim. At p = 8 the alpha term is a few percent and deeper
// chunking keeps helping; at p = 256 the K-fold per-message latency
// dominates and the measured pipe time bottoms out at a finite K — the
// useful chunk depth the alpha-beta model of docs/cost_model.md
// predicts. Additional self-asserts there: the expected schedule depth
// per row, chunking never shrinking the bulk term, the measured best K
// at p = 256 sitting strictly inside the swept range (the latency cap
// is visible), the model's prediction at the measured best K being
// within 10% of the measurement, and — the CI-tracked headline — the
// measured overlap fraction at (p = 8, 1d-overlap, K = 2) agreeing with
// the schedule model's 1 - 1/K = 50% within 25 percentage points.
//
// Usage: bench_overlap [--skip-scale | --smoke]
//   --skip-scale  only the quick K-sweep tables (used while iterating;
//                 CI runs the full default so the artifact always has
//                 the p=256 rows).
//   --smoke       quick tables plus ONLY the p = 8 scale points (both
//                 strategy families, measured-overlap assert included),
//                 no JSON artifact — the sanitizer-CI configuration.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <tuple>
#include <vector>

#include "bench_common.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

void run_dataset(const Dataset& ds, const std::vector<int>& ps,
                 const std::vector<int>& chunk_counts) {
  print_banner(std::cout, ds.name);
  Table table({"p", "K", "alltoall MB", "msgs", "bulk ms", "pipe ms",
               "ideal ms", "recovered %", "meas hid %"});
  for (int p : ps) {
    double baseline_compute = 0, baseline_bulk = 0, baseline_gap = 0;
    double baseline_a2a_mb = 0;
    for (int k : chunk_counts) {
      ExperimentSpec spec;
      spec.strategy = k == 0 ? "1d-sparse" : "1d-overlap";
      spec.partitioner = "gvb";
      spec.p = p;
      spec.pipeline_chunks = std::max(1, k);
      const TrainResult r = run_experiment(ds, spec);
      const auto& a2a = r.phase_volumes.at("alltoall");

      // Pin the (noisy, re-measured) compute term to the baseline row;
      // the comm terms are exact. See the header comment.
      EpochCost cost = r.modeled_epoch;
      if (k == 0) {
        baseline_compute = cost.compute;
        baseline_a2a_mb = a2a.megabytes_per_epoch;
      } else {
        cost.compute = baseline_compute;
        // Chunk counts clamp to each layer's feature width; with derived
        // dims {f, 16, 16, classes} the widest propagated matrix has
        // max(f, 16) columns, so that bounds the deepest stage count.
        const int expected =
            std::min(k, std::max(static_cast<int>(ds.n_features()), 16));
        if (r.pipeline_stages != expected) {
          std::cerr << "SCHEDULE VIOLATION: configured " << k
                    << " chunks (expected " << expected << " stages) but ran "
                    << r.pipeline_stages << " stages\n";
          std::exit(1);
        }
        if (a2a.megabytes_per_epoch != baseline_a2a_mb) {
          std::cerr << "PAYLOAD VIOLATION: chunked alltoall moved "
                    << a2a.megabytes_per_epoch << " MB vs baseline "
                    << baseline_a2a_mb << " MB\n";
          std::exit(1);
        }
      }
      const double bulk = cost.total();
      const double pipe = cost.total_pipelined(r.pipeline_stages);
      const double ideal = cost.total_overlapped();
      if (k == 0) {
        baseline_bulk = bulk;
        baseline_gap = bulk - ideal;
      }
      const double recovered =
          baseline_gap > 0 ? (baseline_bulk - pipe) / baseline_gap * 100.0 : 0.0;
      table.add_row({std::to_string(p),
                     k == 0 ? "sparse" : std::to_string(r.pipeline_stages),
                     Table::num(a2a.megabytes_per_epoch, 4),
                     Table::num(a2a.messages_per_epoch, 4), ms(bulk), ms(pipe),
                     ms(ideal), Table::num(recovered, 3),
                     Table::num(r.measured_overlap_fraction() * 100.0, 3)});
    }
  }
  table.print(std::cout);
}

// ---- Latency-regime sweep: p in {8, 64, 256} ----

struct ScaleRecord {
  std::string dataset;
  std::string strategy;
  int p = 0;
  int c = 1;
  int chunks = 0;  ///< 0 = bulk-synchronous baseline
  int stages = 1;
  double a2a_mb = 0;
  double a2a_msgs = 0;
  double bulk_ms = 0;
  double pipe_ms = 0;
  double model_pipe_ms = 0;  ///< alpha-beta prediction from the baseline row
  double ideal_ms = 0;
  double recovered_pct = 0;
  /// Wall-clock overlap the exchanges measured (hidden/(hidden+blocked)),
  /// its schedule-model counterpart (1 - 1/stages), and the signed gap.
  double measured_hidden_pct = 0;
  double model_hidden_pct = 0;
  double gap_pct = 0;
  /// Host-straggler attribution of the gap: the single worst blocked wait
  /// of the run (EpochCost::measured_max_blocked — the bound the measured
  /// fraction saturates at under deep K), plus the fault-layer counters.
  /// On these fault-free runs retries/timeouts/straggler must be ZERO; a
  /// nonzero value means the overlap measurement is polluted by injected
  /// faults and the gap column stops being a host-scheduler readout.
  double tail_ms = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  double straggler_ms = 0;
};

void emit_scale_json(const std::vector<ScaleRecord>& records,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "ARTIFACT VIOLATION: cannot open " << path
              << " for writing\n";
    std::exit(1);
  }
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ScaleRecord& r = records[i];
    out << "  {\"dataset\": \"" << r.dataset << "\", \"strategy\": \""
        << r.strategy << "\", \"p\": " << r.p << ", \"c\": " << r.c
        << ", \"chunks\": " << r.chunks << ", \"stages\": " << r.stages
        << ", \"alltoall_mb\": " << r.a2a_mb
        << ", \"alltoall_msgs\": " << r.a2a_msgs
        << ", \"bulk_ms\": " << r.bulk_ms << ", \"pipe_ms\": " << r.pipe_ms
        << ", \"model_pipe_ms\": " << r.model_pipe_ms
        << ", \"ideal_ms\": " << r.ideal_ms
        << ", \"recovered_pct\": " << r.recovered_pct
        << ", \"measured_hidden_pct\": " << r.measured_hidden_pct
        << ", \"model_hidden_pct\": " << r.model_hidden_pct
        << ", \"gap_pct\": " << r.gap_pct << ", \"tail_ms\": " << r.tail_ms
        << ", \"retries\": " << r.retries << ", \"timeouts\": " << r.timeouts
        << ", \"straggler_ms\": " << r.straggler_ms << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  out.flush();
  out.close();
  if (out.fail()) {
    std::cerr << "ARTIFACT VIOLATION: short write to " << path << "\n";
    std::exit(1);
  }
  std::cout << "\nwrote " << records.size() << " records to " << path << "\n";
}

/// One (strategy family, p) column of the sweep. Returns its records;
/// self-asserts payload invariance, the expected schedule depth, that
/// chunking never shrinks the bulk term (messages only inflate), and —
/// in the p = 256 latency regime — a strictly interior best K predicted
/// within 10%. (pipe <= bulk within a row is an identity of the
/// pipelined formula, so it is not asserted; the meaningful regression
/// guard is pipe vs the BASELINE bulk, which the recovered%% column and
/// the interior-best-K assert capture.)
std::vector<ScaleRecord> run_scale_point(const Dataset& ds,
                                         const std::string& baseline,
                                         const std::string& overlap, int p,
                                         int c, bool cross_layer,
                                         const std::vector<int>& chunk_counts,
                                         Table& table) {
  std::vector<ScaleRecord> records;

  ExperimentSpec spec;
  spec.strategy = baseline;
  spec.partitioner = "gvb";
  spec.p = p;
  spec.c = c;
  spec.epochs = 1;  // traffic is identical every epoch; one is exact
  const TrainResult base_r = run_experiment(ds, spec);
  const EpochCost base = base_r.modeled_epoch;
  const auto [alpha_eff, beta_eff] = base.effective_alpha_beta();
  const double base_a2a_mb = base_r.phase_volumes.at("alltoall").megabytes_per_epoch;
  const double base_bulk = base.total();
  const double base_ideal = base.total_overlapped();
  const double base_gap = base_bulk - base_ideal;

  const auto add = [&](const std::string& strategy, int k, int stages,
                       const TrainResult& r, double bulk, double pipe,
                       double model, double ideal) {
    const PhaseVolume& a2a = r.phase_volumes.at("alltoall");
    const double measured_pct = r.measured_overlap_fraction() * 100.0;
    const double recovered =
        base_gap > 0 ? (base_bulk - pipe) / base_gap * 100.0 : 0.0;
    const double model_pct =
        stages > 0 ? (1.0 - 1.0 / stages) * 100.0 : 0.0;
    const double gap = measured_pct - model_pct;
    // The straggler attribution: the worst single blocked wait bounds how
    // much hidden time deep-K schedules can measure on this host, and the
    // fault counters prove the measurement ran fault-free (see ScaleRecord).
    const double tail_ms = r.modeled_epoch.measured_max_blocked * 1e3;
    if (r.faults.any()) {
      std::cerr << "FAULT-FREE VIOLATION: " << strategy << " p=" << p
                << " K=" << k << " recorded injected-fault activity ("
                << r.faults.retries << " retries, " << r.faults.timeouts
                << " timeouts, " << r.faults.straggler_seconds
                << " s straggler) on a run with no fault plan\n";
      std::exit(1);
    }
    records.push_back({ds.name, strategy, p, c, k, stages,
                       a2a.megabytes_per_epoch, a2a.messages_per_epoch, bulk,
                       pipe, model, ideal, recovered, measured_pct, model_pct,
                       gap, tail_ms, r.faults.retries, r.faults.timeouts,
                       r.faults.straggler_seconds * 1e3});
    table.add_row({strategy, std::to_string(p),
                   k == 0 ? "bulk" : std::to_string(k), std::to_string(stages),
                   Table::num(a2a.messages_per_epoch, 4), ms(bulk), ms(pipe),
                   k == 0 ? "-" : ms(model), ms(ideal),
                   Table::num(recovered, 3), Table::num(measured_pct, 3),
                   Table::num(model_pct, 3), Table::num(gap, 3),
                   Table::num(tail_ms, 3),
                   std::to_string(r.faults.retries) + "/" +
                       std::to_string(r.faults.timeouts)});
    return gap;
  };
  add(baseline, 0, base_r.pipeline_stages, base_r, base_bulk, base_bulk,
      base_bulk, base_ideal);

  double best_pipe = base_bulk, best_model = base_bulk;
  int best_k = 0;
  for (int k : chunk_counts) {
    spec.strategy = overlap;
    spec.pipeline_chunks = k;
    const TrainResult r = run_experiment(ds, spec);
    const auto& a2a = r.phase_volumes.at("alltoall");
    if (a2a.megabytes_per_epoch != base_a2a_mb) {
      std::cerr << "PAYLOAD VIOLATION: " << overlap << " p=" << p << " K=" << k
                << " moved " << a2a.megabytes_per_epoch << " MB vs baseline "
                << base_a2a_mb << " MB\n";
      std::exit(1);
    }
    // The cross-layer schedule's depth is propagates x K alltoall chunk
    // stages (5 propagates for the default 3-layer GCN), except the
    // allreduce base's 5 tagged stages + the untagged gradient reduce
    // win at K = 1; the within-layer schedule reports K. Chunk counts
    // stay below every propagated feature width here, so no clamping.
    const int expected_stages = cross_layer ? std::max(5 * k, 6) : k;
    if (r.pipeline_stages != expected_stages) {
      std::cerr << "SCHEDULE VIOLATION: " << overlap << " p=" << p
                << " K=" << k << " expected " << expected_stages
                << " stages but ran " << r.pipeline_stages << "\n";
      std::exit(1);
    }
    // Pin the (noisy, re-measured) compute term to the baseline row; the
    // comm terms are exact recorded traffic.
    EpochCost cost = r.modeled_epoch;
    cost.compute = base.compute;
    const double bulk = cost.total();
    const double pipe = cost.total_pipelined(r.pipeline_stages);
    const double ideal = cost.total_overlapped();
    // Same bytes + K-fold messages can only cost more bulk-synchronously
    // (per-stage bottleneck charging is superadditive too); a chunked
    // bulk below the baseline's means the accounting lost traffic.
    if (bulk < base_bulk * (1.0 - 1e-9)) {
      std::cerr << "ACCOUNTING VIOLATION: " << overlap << " p=" << p
                << " K=" << k << " bulk " << bulk
                << " s fell below the baseline's " << base_bulk << " s\n";
      std::exit(1);
    }
    // The prediction re-prices the BASELINE recording at chunk depth K
    // (messages x K, bytes invariant) and divides the residual by the
    // schedule's stage count — docs/cost_model.md derives the formula.
    const double model =
        base.total_pipelined(k, alpha_eff, beta_eff, r.pipeline_stages);
    const double gap =
        add(overlap, k, r.pipeline_stages, r, bulk, pipe, model, ideal);
    // The CI-tracked agreement point: K = 2 is where the executed
    // depth-2 double-buffered schedule matches the modeled pipeline
    // depth, so measured hidden time must agree with 1 - 1/K = 50%
    // within 25 percentage points. A pipeline that stops posting ahead
    // measures like the bulk row (a few percent) and trips this gate;
    // deeper K saturates at the host's straggler bound instead of the
    // analytic fraction and is tracked, not gated (header comment).
    if (p == 8 && !cross_layer && k == 2 && std::abs(gap) > 25.0) {
      std::cerr << "MEASURED-OVERLAP VIOLATION: " << overlap << " p=" << p
                << " K=" << k << " measured "
                << r.measured_overlap_fraction() * 100.0
                << "% hidden vs schedule model "
                << (1.0 - 1.0 / r.pipeline_stages) * 100.0 << "% (gap "
                << gap << " pp exceeds 25)\n";
      std::exit(1);
    }
    if (pipe < best_pipe) {
      best_pipe = pipe;
      best_model = model;
      best_k = k;
    }
  }

  if (p >= 256) {
    // The latency regime: the alpha term must visibly cap the useful
    // chunk depth (an interior optimum), and the model must predict the
    // measured time at that crossover within 10%.
    if (best_k == 0 || best_k == chunk_counts.back()) {
      std::cerr << "LATENCY-REGIME VIOLATION: " << overlap << " p=" << p
                << " best K=" << best_k << " is not interior to the sweep\n";
      std::exit(1);
    }
    const double err = std::abs(best_model - best_pipe) / best_pipe;
    if (err > 0.10) {
      std::cerr << "MODEL VIOLATION: " << overlap << " p=" << p
                << " predicted " << best_model << " s vs measured "
                << best_pipe << " s at best K=" << best_k << " ("
                << err * 100.0 << "% off)\n";
      std::exit(1);
    }
  }
  return records;
}

void run_scale_sweep(std::vector<ScaleRecord>& records, bool smoke) {
  const Dataset ds = make_reddit_sim(DatasetScale::kSmall);
  print_banner(std::cout, ds.name + (smoke ? " — p = 8 smoke points"
                                           : " — latency-regime sweep (p up "
                                             "to 256)"));
  Table table({"strategy", "p", "K", "stages", "a2a msgs", "bulk ms", "pipe ms",
               "model ms", "ideal ms", "recovered %", "meas %", "mdl %",
               "gap pp", "tail ms", "rt/to"});
  const std::vector<int> chunk_counts =
      smoke ? std::vector<int>{1, 2, 4, 8} : std::vector<int>{1, 2, 4, 8, 16};
  const std::vector<int> ps = smoke ? std::vector<int>{8}
                                    : std::vector<int>{8, 64, 256};
  for (int p : ps) {
    for (const auto& [baseline, overlap, c, cross_layer] :
         {std::tuple{"1d-sparse", "1d-overlap", 1, false},
          std::tuple{"1.5d-sparse", "1.5d-overlap", 2, true}}) {
      const auto rows = run_scale_point(ds, baseline, overlap, p, c,
                                        cross_layer, chunk_counts, table);
      records.insert(records.end(), rows.begin(), rows.end());
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: at p = 8 'pipe' keeps falling with K (the\n"
               "alpha term is a few percent); at p = 256 the K-fold message\n"
               "latency dominates and 'pipe' bottoms out at an interior K —\n"
               "the useful chunk depth. 'model' is the alpha-beta prediction\n"
               "from the bulk baseline row (docs/cost_model.md); it must\n"
               "track the measured 'pipe' within 10% at the crossover.\n"
               "'meas' is the wall-clock hidden share the exchanges\n"
               "recorded; it stays near zero on bulk rows, matches the\n"
               "schedule-only 'mdl' = 1 - 1/stages at K = 2 (the executed\n"
               "double-buffered depth), and saturates at the host's\n"
               "straggler bound at deeper K — 'gap pp' tracks exactly that,\n"
               "and 'tail ms' names the bound: the single worst blocked\n"
               "wait of the run. 'rt/to' are the fault layer's retry and\n"
               "timeout counters, asserted zero here so the gap readout is\n"
               "provably free of injected faults (bench_faults is where\n"
               "they go nonzero).\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (handle_list_flag(argc, argv)) return 0;
  bool skip_scale = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-scale") == 0) skip_scale = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  preamble("Overlap — chunked-pipelining schedule sweep",
           "K = 'sparse' is the bulk-synchronous 1d-sparse baseline; K >= 1\n"
           "is 1d-overlap with K column chunks. All rows share the gvb\n"
           "partitioner. pipe must sit between ideal and bulk everywhere;\n"
           "'recovered' nets the pipelined time against the BASELINE's gap.");
  const std::vector<int> chunk_counts{0, 1, 2, 4, 8, 16};
  run_dataset(make_amazon_sim(DatasetScale::kTiny), {4, 8}, chunk_counts);
  run_dataset(make_reddit_sim(DatasetScale::kTiny), {8}, chunk_counts);
  std::cout << "\nShape check: 'pipe' falls from 'bulk' toward 'ideal' as K\n"
               "grows; 'recovered' trails the schedule-only 1 - 1/K because\n"
               "the K-fold message count inflates 'bulk' itself (visible as\n"
               "the slowly rising bulk column). At these tiny p the latency\n"
               "tax is a few percent; the p = 256 sweep below is where it\n"
               "caps the useful chunk depth.\n";

  if (smoke) {
    // Sanitizer CI: the p = 8 points exercise both pipelined strategies
    // and the measured-overlap assert without the p = 256 wall-clock (or
    // a JSON artifact that would shadow the full run's).
    std::vector<ScaleRecord> records;
    run_scale_sweep(records, /*smoke=*/true);
  } else if (!skip_scale) {
    std::vector<ScaleRecord> records;
    run_scale_sweep(records, /*smoke=*/false);
    emit_scale_json(records, "BENCH_overlap_scale.json");
  }
  return 0;
}
