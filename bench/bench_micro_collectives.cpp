// Microbenchmarks of the simulated collectives: runtime-side throughput of
// bcast / all-to-allv / all-reduce at several rank counts. These measure
// the simulator itself (host memcpy + scheduling), not modeled network
// time — useful for keeping the harness overhead in check.

#include <benchmark/benchmark.h>

#include "simcomm/cluster.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {
namespace {

void BM_Bcast(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_spmd(p, [elems](Comm& comm) {
      std::vector<real_t> data(elems, comm.rank() == 0 ? 1.0f : 0.0f);
      bcast<real_t>(comm, 0, data);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * (p - 1) * elems * sizeof(real_t));
}
BENCHMARK(BM_Bcast)->Args({4, 1 << 14})->Args({16, 1 << 14})->Args({64, 1 << 12});

void BM_Alltoallv(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_spmd(p, [p, elems](Comm& comm) {
      std::vector<std::vector<real_t>> send(static_cast<std::size_t>(p));
      for (auto& buf : send) buf.assign(elems, 1.0f);
      auto recv = alltoallv<real_t>(comm, send);
      benchmark::DoNotOptimize(recv.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * p * (p - 1) * elems *
                          sizeof(real_t));
}
BENCHMARK(BM_Alltoallv)->Args({4, 1 << 12})->Args({16, 1 << 10})->Args({64, 1 << 8});

void BM_AllreduceRing(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_spmd(p, [elems](Comm& comm) {
      std::vector<real_t> data(elems, static_cast<real_t>(comm.rank()));
      allreduce_sum<real_t>(comm, data);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * 2 * p * elems * sizeof(real_t));
}
BENCHMARK(BM_AllreduceRing)->Args({4, 1 << 14})->Args({16, 1 << 12})->Args({64, 1 << 10});

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_spmd(p, [](Comm& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace sagnn
