// Reproduces Figure 3: 1D training time per epoch vs GPU count for three
// schemes — CAGNET (sparsity-oblivious broadcast), SA (sparsity-aware
// all-to-all on the plain block distribution), SA+GVB (sparsity-aware with
// the volume-balancing partitioner) — on Reddit, Amazon and Protein
// analogues. Paper plot range: p = 4..64 (Reddit), 4..256 (Amazon/Protein).
//
// Expected shapes (paper §7.1):
//   * CAGNET flattens or worsens with p (bandwidth does not scale).
//   * SA matches or loses to CAGNET at small p, wins for p >= 32 on the
//     sparse graphs.
//   * SA+GVB improves on SA ~2x on irregular graphs and by an order of
//     magnitude (14x at p=256 in the paper) on the regular protein graph.

#include <iostream>

#include "bench_common.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

void run_dataset(const Dataset& ds, const std::vector<int>& ps) {
  print_banner(std::cout, ds.name + "  (n=" + std::to_string(ds.n_vertices()) +
                              ", nnz=" + std::to_string(ds.n_edges()) + ")");
  Table table({"p", "CAGNET ms/epoch", "SA ms/epoch", "SA+GVB ms/epoch",
               "SA/CAGNET", "SA+GVB/SA"});
  for (int p : ps) {
    const auto cagnet = run_scheme(ds, kCagnet1d, p);
    const auto sa = run_scheme(ds, kSa1d, p);
    const auto gvb = run_scheme(ds, kSaGvb1d, p);
    const double tc = cagnet.modeled_epoch_seconds();
    const double ts = sa.modeled_epoch_seconds();
    const double tg = gvb.modeled_epoch_seconds();
    table.add_row({std::to_string(p), ms(tc), ms(ts), ms(tg),
                   Table::num(ts / tc, 3), Table::num(tg / ts, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  preamble("Figure 3 — 1D epoch time vs #GPUs",
           "Modeled epoch time (alpha-beta comm + scaled measured compute).\n"
           "Log-log in the paper; ratios < 1 mean the right scheme wins.");

  run_dataset(make_reddit_sim(DatasetScale::kSmall), {4, 16, 32, 64});
  run_dataset(make_amazon_sim(DatasetScale::kSmall), {4, 16, 32, 64, 128, 256});
  run_dataset(make_protein_sim(DatasetScale::kSmall), {4, 16, 32, 64, 128, 256});

  std::cout << "\nShape check: SA/CAGNET < 1 for p >= 32; SA+GVB/SA well\n"
               "below 1 everywhere, smallest on protein-sim at high p.\n";
  return 0;
}
