// Reproduces Figure 6: SA+GVB vs SA+METIS training time on Amazon and
// Protein, p = 4..64, plus the underlying volume metrics that explain the
// gap.
//
// Expected shapes (paper §7.1.1):
//   * Amazon (irregular): GVB beats METIS — up to ~2x at p=64 — because it
//     reduces the *maximum* send volume that bottlenecks the alltoall.
//   * Protein (regular): both partitioners nearly eliminate the edgecut, so
//     they perform similarly and compute balance decides (METIS can be
//     slightly ahead).

#include <iostream>

#include "bench_common.hpp"
#include "partition/metrics.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

void run_dataset(const Dataset& ds, const std::vector<int>& ps) {
  print_banner(std::cout, ds.name);
  Table table({"p", "SA+METIS ms", "SA+GVB ms", "GVB/METIS", "METIS maxMB",
               "GVB maxMB", "METIS cut", "GVB cut"});
  for (int p : ps) {
    const auto metis = run_scheme(ds, kSaMetis1d, p);
    const auto gvb = run_scheme(ds, kSaGvb1d, p);
    const double tm = metis.modeled_epoch_seconds();
    const double tg = gvb.modeled_epoch_seconds();
    table.add_row(
        {std::to_string(p), ms(tm), ms(tg), Table::num(tg / tm, 3),
         Table::num(metis.volume_model.max_send_megabytes(ds.n_features()), 4),
         Table::num(gvb.volume_model.max_send_megabytes(ds.n_features()), 4),
         std::to_string(metis.volume_model.edgecut),
         std::to_string(gvb.volume_model.edgecut)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  preamble("Figure 6 — partitioner comparison (SA+GVB vs SA+METIS, 1D)",
           "GVB/METIS < 1 means the volume-balancing partitioner wins.");
  run_dataset(make_amazon_sim(DatasetScale::kSmall), {4, 16, 32, 64});
  run_dataset(make_protein_sim(DatasetScale::kSmall), {4, 16, 32, 64});
  std::cout << "\nShape check: GVB wins on amazon-sim (smaller max send\n"
               "volume); on protein-sim both cut ~nothing and tie.\n";
  return 0;
}
