// Fault-injection study: what do stragglers, lossy links, and rank kills
// cost a distributed training job, and what does closed-loop checkpoint
// recovery buy back? Five scenario families, every one self-asserting its
// invariant (exit 1 on violation, so CI gates on this binary):
//
//   parity     — an installed-but-EMPTY FaultPlan must leave the loss
//                trajectory BITWISE identical to no plan at all (the
//                fault layer's foundational guarantee);
//   straggler  — per-rank slowdown delays sends and charges the overlap
//                ledger, but never perturbs payload math: bitwise
//                trajectory, nonzero straggler_seconds;
//   lossy      — message drops ride the timeout/retry/backoff protocol to
//                exactly-once delivery: bitwise trajectory, drops ==
//                retries (every swallowed transmission re-requested,
//                no retry budget exhausted);
//   preempt    — scheduled transient kills x checkpoint interval: the
//                recovery loop restores and replays; wasted work is
//                bounded by the interval (replayed <= interval per kill)
//                and the final trajectory is bitwise the fault-free one;
//   elastic    — a permanent kill drops the job to p-1 ranks; the
//                re-partitioned continuation must track the serial
//                reference trajectory within tolerance.
//
// Each record reports the recovery economics: wasted (replayed) epochs,
// recovery wall-clock, snapshot cost, and goodput — completed USEFUL
// epochs per wall-clock second, so the fault-rate x checkpoint-interval
// tradeoff is directly readable from BENCH_faults.json (a CI artifact).
//
// Usage: bench_faults [--smoke]
//   --smoke  tiny dataset, fewer checkpoint intervals — the CI gate.

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "gnn/trainer.hpp"
#include "simcomm/fault.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

struct Record {
  std::string scenario;
  std::string dataset;
  std::string strategy;
  int p = 0;
  int ckpt_interval = 0;
  int epochs = 0;
  int kills = 0;
  int restores = 0;
  int cold_restarts = 0;
  int elastic_restarts = 0;
  int replayed_epochs = 0;
  double recovery_seconds = 0;
  double save_seconds = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t duplicates = 0;
  double straggler_seconds = 0;
  double wall_seconds = 0;
  double goodput_eps = 0;  ///< useful (non-replayed) epochs per wall second
  bool bitwise = false;    ///< trajectory matched the fault-free reference
  bool ok = false;
};

std::vector<Record> g_records;
int g_violations = 0;

void violation(const std::string& what) {
  std::cerr << "FAULT INVARIANT VIOLATION: " << what << "\n";
  ++g_violations;
}

void emit_json(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    violation("cannot open " + path + " for writing");
    return;
  }
  out << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const Record& r = g_records[i];
    out << "  {\"scenario\": \"" << r.scenario << "\", \"dataset\": \""
        << r.dataset << "\", \"strategy\": \"" << r.strategy
        << "\", \"p\": " << r.p << ", \"ckpt_interval\": " << r.ckpt_interval
        << ", \"epochs\": " << r.epochs << ", \"kills\": " << r.kills
        << ", \"restores\": " << r.restores
        << ", \"cold_restarts\": " << r.cold_restarts
        << ", \"elastic_restarts\": " << r.elastic_restarts
        << ", \"replayed_epochs\": " << r.replayed_epochs
        << ", \"recovery_seconds\": " << r.recovery_seconds
        << ", \"save_seconds\": " << r.save_seconds
        << ", \"snapshot_bytes\": " << r.snapshot_bytes
        << ", \"drops\": " << r.drops << ", \"retries\": " << r.retries
        << ", \"timeouts\": " << r.timeouts
        << ", \"duplicates\": " << r.duplicates
        << ", \"straggler_seconds\": " << r.straggler_seconds
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"goodput_eps\": " << r.goodput_eps
        << ", \"bitwise\": " << (r.bitwise ? "true" : "false")
        << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
        << (i + 1 < g_records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "\nwrote " << g_records.size() << " records to " << path << "\n";
}

GcnConfig bench_gcn(const Dataset& ds, int epochs) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  cfg.dropout = 0.2f;  // exercises the epoch-keyed dropout replay path
  return cfg;
}

bool same_trajectory_bitwise(const std::vector<EpochMetrics>& a,
                             const std::vector<EpochMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t e = 0; e < a.size(); ++e) {
    if (a[e].loss != b[e].loss || a[e].train_accuracy != b[e].train_accuracy) {
      return false;
    }
  }
  return true;
}

std::string scratch_ckpt() {
  return (std::filesystem::temp_directory_path() / "bench_faults.ckpt")
      .string();
}

/// Run one faulty configuration end to end and fill the bookkeeping
/// columns every scenario shares. `reference` is the fault-free
/// trajectory the bitwise column compares against (empty = skip);
/// `trajectory_out`, when non-null, receives the run's own trajectory.
Record run_faulty(const std::string& scenario, const Dataset& ds, int p,
                  int epochs, const FaultSpec& spec, FaultRecovery recovery,
                  int ckpt_interval, const std::vector<EpochMetrics>& reference,
                  Table& table,
                  std::vector<EpochMetrics>* trajectory_out = nullptr) {
  const std::string path = scratch_ckpt();
  std::filesystem::remove(path);
  TrainerBuilder b(ds);
  b.strategy("1d-sparse").ranks(p).partitioner("gvb").gcn(bench_gcn(ds, epochs));
  if (ckpt_interval > 0) b.auto_checkpoint(path, ckpt_interval);
  b.fault_plan(spec).fault_recovery(recovery);
  auto trainer = b.build();
  WallTimer wall;
  trainer->train();
  const double wall_seconds = wall.seconds();
  const TrainResult& r = trainer->result();

  Record rec;
  rec.scenario = scenario;
  rec.dataset = ds.name;
  rec.strategy = "1d-sparse";
  rec.p = p;
  rec.ckpt_interval = ckpt_interval;
  rec.epochs = static_cast<int>(r.epochs.size());
  rec.kills = r.recovery.kills;
  rec.restores = r.recovery.restores;
  rec.cold_restarts = r.recovery.cold_restarts;
  rec.elastic_restarts = r.recovery.elastic_restarts;
  rec.replayed_epochs = r.recovery.replayed_epochs;
  rec.recovery_seconds = r.recovery.recovery_seconds;
  rec.save_seconds = r.recovery.last_save_seconds;
  rec.snapshot_bytes = r.recovery.snapshot_bytes;
  rec.drops = r.faults.drops;
  rec.retries = r.faults.retries;
  rec.timeouts = r.faults.timeouts;
  rec.duplicates = r.faults.duplicates;
  rec.straggler_seconds = r.faults.straggler_seconds;
  rec.wall_seconds = wall_seconds;
  rec.goodput_eps =
      wall_seconds > 0 ? static_cast<double>(rec.epochs) / wall_seconds : 0;
  rec.bitwise =
      !reference.empty() && same_trajectory_bitwise(r.epochs, reference);
  if (trajectory_out != nullptr) *trajectory_out = r.epochs;
  std::filesystem::remove(path);

  table.add_row(
      {scenario, std::to_string(p),
       ckpt_interval > 0 ? std::to_string(ckpt_interval) : "-",
       std::to_string(rec.kills), std::to_string(rec.replayed_epochs),
       ms(rec.recovery_seconds),
       std::to_string(rec.drops) + "/" + std::to_string(rec.retries),
       std::to_string(rec.timeouts), Table::num(rec.straggler_seconds, 4),
       Table::num(rec.goodput_eps, 4),
       rec.bitwise ? "bitwise" : (reference.empty() ? "-" : "DIFF")});
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  preamble(
      "Faults — straggler / lossy-link / kill-recovery study",
      "Deterministic fault plans on the simulated cluster: what injected\n"
      "stragglers, message loss (timeout/retry/backoff), and rank kills\n"
      "cost, and what the closed-loop checkpoint recovery buys back.\n"
      "Every scenario self-asserts its invariant (empty plan -> bitwise,\n"
      "survivable plan -> fault-free trajectory, replay bounded by the\n"
      "checkpoint interval); exit 1 on violation. goodput = completed\n"
      "epochs / wall second.");

  const DatasetScale scale = smoke ? DatasetScale::kTiny : DatasetScale::kSmall;
  const Dataset ds = make_amazon_sim(scale);
  const int p = 4;
  const int epochs = smoke ? 6 : 10;

  // The fault-free reference every bitwise assert compares against.
  auto reference = TrainerBuilder(ds)
                       .strategy("1d-sparse")
                       .ranks(p)
                       .partitioner("gvb")
                       .gcn(bench_gcn(ds, epochs))
                       .build();
  WallTimer ref_wall;
  const std::vector<EpochMetrics> ref = reference->train();
  const double ref_goodput = static_cast<double>(epochs) / ref_wall.seconds();

  print_banner(std::cout, ds.name + " — fault injection & recovery");
  std::cout << "fault-free goodput: " << Table::num(ref_goodput, 4)
            << " epochs/s (the ceiling every faulty row is read against)\n";
  Table table({"scenario", "p", "ckpt", "kills", "replayed", "recover",
               "drop/retry", "timeouts", "straggler s", "goodput e/s",
               "trajectory"});

  // ---- parity: the empty plan must change NOTHING. ----
  {
    const Record rec = run_faulty("parity", ds, p, epochs, FaultSpec{},
                                  FaultRecovery::kCheckpointRestart,
                                  /*ckpt_interval=*/0, ref, table);
    Record full = rec;
    full.ok = rec.bitwise && rec.kills == 0 && rec.drops == 0 &&
              rec.retries == 0 && rec.timeouts == 0 &&
              rec.straggler_seconds == 0;
    if (!full.ok) violation("empty plan was not bitwise-silent");
    g_records.push_back(full);
  }

  // ---- straggler: delay is charged, math is untouched. ----
  {
    FaultSpec spec;
    spec.rank_slowdown[p - 1] = 4.0;
    spec.straggler_send_delay = 50e-6;
    Record rec = run_faulty("straggler", ds, p, epochs, spec,
                            FaultRecovery::kNone, 0, ref, table);
    rec.ok = rec.bitwise && rec.straggler_seconds > 0 && rec.drops == 0;
    if (!rec.ok) violation("straggler run lost bitwise parity or counters");
    g_records.push_back(rec);
  }

  // ---- lossy: exactly-once delivery under drops + duplicates. ----
  {
    FaultSpec spec;
    spec.seed = 11;
    spec.drop_probability = smoke ? 0.02 : 0.01;
    spec.duplicate_probability = 0.02;
    spec.retry_timeout = 1e-3;
    spec.max_attempts = 8;
    Record rec = run_faulty("lossy", ds, p, epochs, spec, FaultRecovery::kNone,
                            0, ref, table);
    rec.ok = rec.bitwise && rec.drops > 0 && rec.retries == rec.drops &&
             rec.timeouts >= rec.retries;
    if (!rec.ok) {
      violation("lossy run broke exactly-once delivery (drops=" +
                std::to_string(rec.drops) + " retries=" +
                std::to_string(rec.retries) + " bitwise=" +
                (rec.bitwise ? "yes" : "no") + ")");
    }
    g_records.push_back(rec);
  }

  // ---- preempt: two transient kills x checkpoint interval. ----
  const std::vector<int> intervals = smoke ? std::vector<int>{1, 2}
                                           : std::vector<int>{1, 2, 4};
  for (int interval : intervals) {
    FaultSpec spec;
    spec.kills.push_back(KillSpec{epochs / 2, 1, 0, false});
    spec.kills.push_back(KillSpec{epochs - 1, p - 1, 0, false});
    Record rec = run_faulty("preempt", ds, p, epochs, spec,
                            FaultRecovery::kCheckpointRestart, interval, ref,
                            table);
    // Each kill replays at most (interval - 1) completed epochs plus the
    // one the kill interrupted... which the snapshot cadence bounds by
    // the interval itself. Wasted work above kills * interval means the
    // recovery loop restored an older snapshot than it had to.
    const int replay_bound = rec.kills * interval;
    rec.ok = rec.bitwise && rec.kills == 2 && rec.restores == 2 &&
             rec.replayed_epochs <= replay_bound;
    if (!rec.ok) {
      violation("preempt interval=" + std::to_string(interval) +
                " (kills=" + std::to_string(rec.kills) + " restores=" +
                std::to_string(rec.restores) + " replayed=" +
                std::to_string(rec.replayed_epochs) + " bound=" +
                std::to_string(replay_bound) + " bitwise=" +
                (rec.bitwise ? "yes" : "no") + ")");
    }
    g_records.push_back(rec);
  }

  // ---- elastic: a permanent kill survives on p-1 ranks. ----
  {
    auto serial = TrainerBuilder(ds)
                      .strategy("serial")
                      .gcn(bench_gcn(ds, epochs))
                      .build();
    const std::vector<EpochMetrics> serial_ref = serial->train();
    FaultSpec spec;
    spec.kills.push_back(KillSpec{epochs / 2, 1, 0, /*permanent=*/true});
    std::vector<EpochMetrics> got;
    Record rec = run_faulty("elastic", ds, p, epochs, spec,
                            FaultRecovery::kCheckpointRestart,
                            /*ckpt_interval=*/1, {}, table, &got);
    // The re-partitioned p-1 continuation tracks the serial trajectory
    // within the same tolerance the elastic-restart bench uses.
    bool parity = got.size() == serial_ref.size();
    for (std::size_t e = 0; parity && e < got.size(); ++e) {
      parity = std::abs(got[e].loss - serial_ref[e].loss) <=
               5e-3 * std::max(1.0, serial_ref[e].loss);
    }
    rec.ok = parity && rec.kills == 1 && rec.elastic_restarts == 1 &&
             rec.restores == 1;
    if (!rec.ok) {
      violation("elastic recovery did not absorb the permanent kill (kills=" +
                std::to_string(rec.kills) + " elastic=" +
                std::to_string(rec.elastic_restarts) + ")");
    }
    g_records.push_back(rec);
  }

  table.print(std::cout);
  std::cout << "\nShape check: goodput falls as the checkpoint interval\n"
               "grows (more replayed work per kill) and as drop probability\n"
               "rises (each drop costs a retry timeout); the trajectory\n"
               "column stays 'bitwise' everywhere except the elastic row,\n"
               "whose re-partition legitimately changes the reduction\n"
               "order.\n";

  emit_json("BENCH_faults.json");
  if (g_violations > 0) {
    std::cerr << g_violations << " fault invariant violation(s)\n";
    return 1;
  }
  std::cout << "all fault-injection invariants held\n";
  return 0;
}
