// Reproduces Table 3: "Datasets used in our experiments" — for the scaled
// synthetic analogues, alongside the paper's original numbers so the
// preserved *contrasts* (Reddit densest, Amazon sparsest, Papers largest,
// Protein regular) are visible.

#include <iostream>

#include "bench_support/tableio.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

using namespace sagnn;

int main() {
  std::cout << "Table 3 analogue: synthetic dataset suite (default scale).\n"
               "Paper originals: Reddit 233K/115M, Amazon 14.2M/231M,\n"
               "Protein 8.7M/2.1B, Papers 111M/3.2B.\n\n";

  Table table({"graph", "vertices", "edges(nnz)", "avg deg", "max deg",
               "features", "labels"});
  for (const char* name : {"reddit", "amazon", "protein", "papers"}) {
    const Dataset ds = make_dataset(name, DatasetScale::kDefault);
    const DegreeStats st = degree_stats(ds.adjacency);
    table.add_row({ds.name, std::to_string(ds.n_vertices()),
                   std::to_string(ds.n_edges()), Table::num(st.avg, 4),
                   std::to_string(st.max), std::to_string(ds.n_features()),
                   std::to_string(ds.n_classes)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: reddit-sim densest, amazon-sim sparsest &\n"
               "most skewed, papers-sim largest, protein-sim regular.\n";
  return 0;
}
