// Microbenchmarks of the partitioners: wall time of the METIS-analogue and
// the GVB-analogue by graph size and part count — the "is partitioning
// amortizable?" question the paper answers in §1 (yes: hundreds of epochs,
// each with 2L-1 SpMMs, against a one-time partitioning cost).

#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"

namespace sagnn {
namespace {

CsrMatrix graph_for(int scale) {
  Rng rng(static_cast<std::uint64_t>(scale));
  return CsrMatrix::from_coo(rmat(scale, 8, rng));
}

void BM_EdgeCutPartitioner(benchmark::State& state) {
  const CsrMatrix a = graph_for(static_cast<int>(state.range(0)));
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const auto part = EdgeCutPartitioner().partition(a, k);
    benchmark::DoNotOptimize(part.part_of.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_EdgeCutPartitioner)
    ->Args({10, 8})
    ->Args({12, 8})
    ->Args({12, 32})
    ->Args({14, 16});

void BM_GvbPartitioner(benchmark::State& state) {
  const CsrMatrix a = graph_for(static_cast<int>(state.range(0)));
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const auto part = GvbPartitioner().partition(a, k);
    benchmark::DoNotOptimize(part.part_of.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_GvbPartitioner)->Args({10, 8})->Args({12, 8})->Args({12, 32});

void BM_VolumeStats(benchmark::State& state) {
  const CsrMatrix a = graph_for(12);
  const auto part = EdgeCutPartitioner().partition(a, 16);
  for (auto _ : state) {
    const auto stats = compute_volume_stats(a, part);
    benchmark::DoNotOptimize(stats.pair_rows.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_VolumeStats);

}  // namespace
}  // namespace sagnn
