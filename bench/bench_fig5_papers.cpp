// Reproduces Figure 5: the Papers dataset at p = 16 — breakdown of
// sparsity-oblivious vs sparsity-aware vs sparsity-aware + partitioning.
//
// Expected shape (paper §7.1): SA+partitioning beats CAGNET by roughly
// 2.3x, driven by the reduced alltoall time. (The paper could not run GVB
// beyond 16 partitions on Papers because partitioning is memory-hungry —
// at our scale that limit does not bind, but we reproduce the p=16 setup.)

#include <iostream>

#include "bench_common.hpp"

using namespace sagnn;
using namespace sagnn::bench;

int main() {
  preamble("Figure 5 — Papers @ p=16, 1D breakdown",
           "Largest dataset; single process count as in the paper.");
  const Dataset ds = make_papers_sim(DatasetScale::kSmall);
  std::cout << "dataset: " << ds.name << " n=" << ds.n_vertices()
            << " nnz=" << ds.n_edges() << "\n";

  Table table({"scheme", "compute ms", "bcast ms", "alltoall ms",
               "allreduce ms", "total ms"});
  double cagnet_total = 0, gvb_total = 0;
  for (const SchemeSpec& scheme : {kCagnet1d, kSa1d, kSaGvb1d}) {
    const auto r = run_scheme(ds, scheme, 16);
    const double total = r.modeled_epoch.total();
    if (scheme.label == "CAGNET") cagnet_total = total;
    if (scheme.label == "SA+GVB") gvb_total = total;
    table.add_row({scheme.label, ms(r.modeled_epoch.compute),
                   ms(r.modeled_epoch.bcast), ms(r.modeled_epoch.alltoall),
                   ms(r.modeled_epoch.allreduce), ms(total)});
  }
  table.print(std::cout);
  std::cout << "\nCAGNET / SA+GVB speedup: " << Table::num(cagnet_total / gvb_total, 3)
            << "x   (paper reports ~2.3x)\n";
  return 0;
}
