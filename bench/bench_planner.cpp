// Planner regret: how much slower is the configuration the planner PICKS
// (from a census + closed-form predictions alone, no training) than the
// true best configuration found by exhaustively RUNNING every candidate?
//
// Per (dataset, p) cell: take one census, rank the candidate grid with
// plan_strategies(), then run every ranked candidate through
// run_experiment() and score it by the alpha-beta modeled epoch cost with
// the compute term pinned to the candidate's predicted NOMINAL compute —
// regret compares communication schedules, not host speed or measurement
// noise. regret = truth(planner pick) / min truth - 1, self-asserted
// <= 10% on every cell (REGRET VIOLATION + exit 1 otherwise — the CI gate).
//
//   $ ./bench_planner            # full sweep: 3 datasets x p in {8,64,256}
//   $ ./bench_planner --smoke    # sanitizer CI: tiny datasets, p = 8
//   $ ./bench_planner --list     # print the registry catalogs and exit
//
// Both modes write BENCH_planner.json (one record per cell).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "plan/planner.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

constexpr double kRegretGate = 0.10;

struct CellRecord {
  std::string dataset;
  int p = 0;
  int candidates = 0;
  int skipped = 0;
  PlanCandidate pick;       ///< the planner's predicted best
  double pick_truth_s = 0;  ///< truth score of the pick
  PlanCandidate truth_best;  ///< knobs of the true best (truth score below)
  double truth_best_s = 0;
  double regret_pct = 0;
};

/// Truth score of one candidate: run it (1 epoch is exact — every epoch's
/// traffic is identical), price the RECORDED traffic, pin compute to the
/// prediction's nominal term, and take the pipelined critical path at the
/// stage count the run actually used.
double truth_seconds(const Dataset& ds, const PlanCandidate& cand) {
  ExperimentSpec spec;
  spec.strategy = cand.strategy;
  spec.partitioner = cand.partitioner;
  spec.p = cand.p;
  spec.c = cand.c;
  spec.pipeline_chunks = cand.chunks;
  spec.epochs = 1;
  const TrainResult r = run_experiment(ds, spec);
  EpochCost truth = r.modeled_epoch;
  truth.compute = cand.predicted.compute;
  return truth.total_pipelined(r.pipeline_stages);
}

CellRecord run_cell(const Dataset& ds, const GraphCensus& census, int p,
                    Table& table) {
  PlannerOptions opts;
  opts.pinned_p = p;
  opts.partitioners = {"block", "gvb"};
  opts.c_grid = {1, 2, 4};
  opts.chunk_grid = {4};
  const Plan plan = plan_strategies(census, opts);
  if (plan.ranked.size() < 5) {
    std::cerr << "PLAN VIOLATION: only " << plan.ranked.size()
              << " candidates for " << ds.name << " p=" << p << "\n";
    std::exit(1);
  }

  CellRecord cell;
  cell.dataset = ds.name;
  cell.p = p;
  cell.candidates = static_cast<int>(plan.ranked.size());
  cell.skipped = static_cast<int>(plan.skipped.size());
  cell.pick = plan.best();

  double best = -1;
  for (const PlanCandidate& cand : plan.ranked) {
    const double truth = truth_seconds(ds, cand);
    if (cand.strategy == cell.pick.strategy &&
        cand.partitioner == cell.pick.partitioner && cand.c == cell.pick.c &&
        cand.chunks == cell.pick.chunks) {
      cell.pick_truth_s = truth;
    }
    if (best < 0 || truth < best) {
      best = truth;
      cell.truth_best = cand;
      cell.truth_best_s = truth;
    }
  }
  cell.regret_pct = (cell.pick_truth_s / cell.truth_best_s - 1.0) * 100.0;

  const auto label = [](const PlanCandidate& c) {
    return c.strategy + "+" + c.partitioner + " c=" + std::to_string(c.c);
  };
  table.add_row({ds.name, std::to_string(p), std::to_string(cell.candidates),
                 label(cell.pick), ms(cell.pick.seconds), ms(cell.pick_truth_s),
                 label(cell.truth_best), ms(cell.truth_best_s),
                 Table::num(cell.regret_pct, 3)});

  if (cell.regret_pct > kRegretGate * 100.0) {
    std::cerr << "REGRET VIOLATION: " << ds.name << " p=" << p << ": planner "
              << "picked " << label(cell.pick) << " (truth "
              << ms(cell.pick_truth_s) << " ms) but " << label(cell.truth_best)
              << " is " << ms(cell.truth_best_s) << " ms — regret "
              << cell.regret_pct << "% exceeds the " << kRegretGate * 100
              << "% gate\n";
    std::exit(1);
  }
  return cell;
}

void emit_json(const std::vector<CellRecord>& cells, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "ARTIFACT VIOLATION: cannot open " << path << " for writing\n";
    std::exit(1);
  }
  out << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellRecord& r = cells[i];
    out << "  {\"dataset\": \"" << r.dataset << "\", \"p\": " << r.p
        << ", \"candidates\": " << r.candidates
        << ", \"skipped\": " << r.skipped << ", \"picked\": {\"strategy\": \""
        << r.pick.strategy << "\", \"partitioner\": \"" << r.pick.partitioner
        << "\", \"c\": " << r.pick.c << ", \"chunks\": " << r.pick.chunks
        << ", \"predicted_ms\": " << r.pick.seconds * 1e3
        << ", \"truth_ms\": " << r.pick_truth_s * 1e3
        << "}, \"truth_best\": {\"strategy\": \"" << r.truth_best.strategy
        << "\", \"partitioner\": \"" << r.truth_best.partitioner
        << "\", \"c\": " << r.truth_best.c
        << ", \"chunks\": " << r.truth_best.chunks
        << ", \"truth_ms\": " << r.truth_best_s * 1e3
        << "}, \"regret_pct\": " << r.regret_pct << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
  out.flush();
  out.close();
  if (out.fail()) {
    std::cerr << "ARTIFACT VIOLATION: short write to " << path << "\n";
    std::exit(1);
  }
  std::cout << "\nwrote " << cells.size() << " records to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (handle_list_flag(argc, argv)) return 0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  preamble("Planner — predicted-best vs true-best (regret)",
           "Every cell: census -> ranked plan -> exhaustive truth sweep of\n"
           "the same candidates. 'pick' is the planner's predicted best;\n"
           "'truth best' the exhaustive winner. regret <= 10% is the gate:\n"
           "the census-driven closed forms must rank configurations nearly\n"
           "as well as running all of them.");

  // Probe the exact n_blocks values of the candidate grids so the halo
  // interpolation is exact where the predictions evaluate it.
  CensusOptions census_opts;
  census_opts.probe_ks = {2, 4, 8, 16, 32, 64, 128, 256};
  census_opts.partitioners = {"block", "gvb"};

  const DatasetScale scale = smoke ? DatasetScale::kTiny : DatasetScale::kSmall;
  std::vector<std::string> names{"amazon", "reddit"};
  if (!smoke) names.push_back("protein");
  const std::vector<int> ps = smoke ? std::vector<int>{8}
                                    : std::vector<int>{8, 64, 256};

  Table table({"dataset", "p", "cands", "pick", "pred ms", "truth ms",
               "truth best", "best ms", "regret %"});
  std::vector<CellRecord> cells;
  for (const std::string& name : names) {
    const Dataset ds = make_dataset(name, scale);
    const GraphCensus census = take_census(ds, census_opts);
    for (int p : ps) cells.push_back(run_cell(ds, census, p, table));
  }
  table.print(std::cout);
  std::cout << "\nregret gate: every cell <= " << kRegretGate * 100
            << "% of the exhaustive best (modeled, compute pinned to the\n"
               "prediction's nominal term).\n";
  emit_json(cells, "BENCH_planner.json");
  return 0;
}
