// Schema self-check for the BENCH_*.json artifacts CI uploads.
//
// Every bench in this directory emits a flat JSON array of records. This
// driver re-parses those files with a small dependency-free JSON reader
// and fails (exit 1) when a file is syntactically broken, empty, or —
// for the files with a pinned schema — missing a required key in any
// record. It runs in CI right after the bench smokes, so a bench that
// silently starts writing malformed or key-dropping artifacts is caught
// in the same job that produced them, not by a downstream consumer of
// the uploaded artifact.
//
// Usage: bench_schema_check [file.json ...]
//   With no arguments, checks every BENCH_*.json in the current
//   directory (at least one must exist).

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: just enough for the bench artifacts (arrays,
// objects, strings without exotic escapes, numbers, true/false/null).
// Values are not materialized — the checker only needs structure and the
// per-record key sets.
// ---------------------------------------------------------------------------

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool peek_is(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    std::string s;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("truncated escape");
      }
      s.push_back(text[pos++]);
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    if (out != nullptr) *out = std::move(s);
    return true;
  }

  bool parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected number");
    return true;
  }

  bool parse_literal(const char* lit) {
    skip_ws();
    const std::size_t len = std::strlen(lit);
    if (text.compare(pos, len, lit) != 0) return fail("bad literal");
    pos += len;
    return true;
  }

  /// Parse any value; when `keys` is non-null and the value is an object,
  /// collect its top-level key names.
  bool parse_value(std::vector<std::string>* keys) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(keys);
    if (c == '[') return parse_array(nullptr);
    if (c == '"') return parse_string(nullptr);
    if (c == 't') return parse_literal("true");
    if (c == 'f') return parse_literal("false");
    if (c == 'n') return parse_literal("null");
    return parse_number();
  }

  bool parse_object(std::vector<std::string>* keys) {
    if (!consume('{')) return false;
    if (peek_is('}')) return consume('}');
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (keys != nullptr) keys->push_back(key);
      if (!consume(':')) return false;
      if (!parse_value(nullptr)) return false;
      if (peek_is(',')) {
        consume(',');
        continue;
      }
      return consume('}');
    }
  }

  /// Parse an array; when `records` is non-null, collect each element
  /// object's key set (non-object elements get an empty key set).
  bool parse_array(std::vector<std::vector<std::string>>* records) {
    if (!consume('[')) return false;
    if (peek_is(']')) return consume(']');
    while (true) {
      std::vector<std::string> keys;
      if (!parse_value(records != nullptr ? &keys : nullptr)) return false;
      if (records != nullptr) records->push_back(std::move(keys));
      if (peek_is(',')) {
        consume(',');
        continue;
      }
      return consume(']');
    }
  }
};

/// Required keys per artifact file name; files not listed here must still
/// parse as a non-empty array of objects.
const std::map<std::string, std::vector<std::string>> kRequiredKeys = {
    {"BENCH_wallclock.json",
     {"bench", "dataset", "partitioner", "format", "threads", "seconds",
      "speedup", "gbps"}},
};

bool check_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "SCHEMA VIOLATION: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Parser parser(text);
  std::vector<std::vector<std::string>> records;
  if (!parser.parse_array(&records)) {
    std::cerr << "SCHEMA VIOLATION: " << path
              << " is not a JSON array: " << parser.error << "\n";
    return false;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    std::cerr << "SCHEMA VIOLATION: " << path << " has trailing garbage at byte "
              << parser.pos << "\n";
    return false;
  }
  if (records.empty()) {
    std::cerr << "SCHEMA VIOLATION: " << path << " is an empty array\n";
    return false;
  }

  const auto it = kRequiredKeys.find(path.filename().string());
  if (it != kRequiredKeys.end()) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      for (const std::string& key : it->second) {
        if (std::find(records[i].begin(), records[i].end(), key) ==
            records[i].end()) {
          std::cerr << "SCHEMA VIOLATION: " << path << " record " << i
                    << " is missing required key \"" << key << "\"\n";
          return false;
        }
      }
    }
  }
  std::cout << "ok: " << path.filename().string() << " (" << records.size()
            << " records)\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) files.emplace_back(argv[i]);
  } else {
    for (const auto& entry : std::filesystem::directory_iterator(".")) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.substr(name.size() - 5) == ".json") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::cerr << "SCHEMA VIOLATION: no BENCH_*.json files found in the "
                   "current directory\n";
      return 1;
    }
  }
  bool ok = true;
  for (const auto& f : files) ok = check_file(f) && ok;
  return ok ? 0 : 1;
}
