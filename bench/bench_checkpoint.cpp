// Preemption study for the checkpoint/restore subsystem (src/ckpt/):
// inject a kill at a random epoch, recover, and measure what recovery
// costs — snapshot bytes, save/recover wall-clock, and (for distributed
// runs) the re-partition on load — while VERIFYING the subsystem's core
// promise on every scenario:
//
//   * same-geometry resume is BITWISE identical to an uninterrupted run
//     (loss trajectory, final weights, per-epoch phase volumes);
//   * elastic restart (restore onto a different rank count p') resumes
//     and still tracks the serial reference trajectory.
//
// Distributed kills ride the deterministic fault-injection layer
// (simcomm/fault.hpp): a scheduled KillSpec aborts the world at the kill
// epoch and DistributedTrainer::train()'s closed recovery loop restores
// from the periodic auto-checkpoint — the same code path production jobs
// take, not a synthetic save/reset reenactment. The serial scenario keeps
// a manual snapshot/restore (there is no cluster to kill).
//
// Any violation exits nonzero so CI can gate on this binary. Results are
// appended to BENCH_checkpoint.json (records: scenario, dataset, strategy,
// partitioner, p_from, p_to, kill_epoch, total_epochs, snapshot_bytes,
// save_seconds, load_seconds, repartition_seconds, ok) which CI uploads as
// a workflow artifact next to BENCH_wallclock.json.
//
// Usage: bench_checkpoint [--smoke]
//   --smoke  tiny dataset, fixed kill epoch — the CI configuration.

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "gnn/distributed_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "simcomm/fault.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

struct Record {
  std::string scenario;  // "resume" or "elastic"
  std::string dataset;
  std::string strategy;
  std::string partitioner;
  int p_from = 0;
  int p_to = 0;
  int kill_epoch = 0;
  int total_epochs = 0;
  std::size_t snapshot_bytes = 0;
  double save_seconds = 0;
  double load_seconds = 0;
  double repartition_seconds = 0;
  bool ok = false;
};

std::vector<Record> g_records;
int g_violations = 0;

void emit_json(const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const Record& r = g_records[i];
    out << "  {\"scenario\": \"" << r.scenario << "\", \"dataset\": \""
        << r.dataset << "\", \"strategy\": \"" << r.strategy
        << "\", \"partitioner\": \"" << r.partitioner
        << "\", \"p_from\": " << r.p_from << ", \"p_to\": " << r.p_to
        << ", \"kill_epoch\": " << r.kill_epoch
        << ", \"total_epochs\": " << r.total_epochs
        << ", \"snapshot_bytes\": " << r.snapshot_bytes
        << ", \"save_seconds\": " << r.save_seconds
        << ", \"load_seconds\": " << r.load_seconds
        << ", \"repartition_seconds\": " << r.repartition_seconds
        << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
        << (i + 1 < g_records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "\nwrote " << g_records.size() << " records to " << path << "\n";
}

bool same_trajectory_bitwise(const std::vector<EpochMetrics>& a,
                             const std::vector<EpochMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t e = 0; e < a.size(); ++e) {
    if (a[e].loss != b[e].loss || a[e].train_accuracy != b[e].train_accuracy) {
      return false;
    }
  }
  return true;
}

bool same_weights(const GcnModel& a, const GcnModel& b) {
  if (a.n_layers() != b.n_layers()) return false;
  for (int l = 0; l < a.n_layers(); ++l) {
    if (!(a.layer(l).weights() == b.layer(l).weights())) return false;
  }
  return true;
}

bool same_phase_volumes(const TrainResult& a, const TrainResult& b) {
  if (a.phase_volumes.size() != b.phase_volumes.size()) return false;
  for (const auto& [phase, vol] : b.phase_volumes) {
    auto it = a.phase_volumes.find(phase);
    if (it == a.phase_volumes.end() ||
        it->second.megabytes_per_epoch != vol.megabytes_per_epoch ||
        it->second.messages_per_epoch != vol.messages_per_epoch) {
      return false;
    }
  }
  return true;
}

const GcnModel& model_of(Trainer& t) {
  if (auto* dist = dynamic_cast<DistributedTrainer*>(&t)) return dist->model();
  return dynamic_cast<SerialTrainer&>(t).model();
}

GcnConfig bench_gcn(const Dataset& ds, int epochs) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  cfg.dropout = 0.2f;  // exercises the epoch-keyed dropout resume path
  return cfg;
}

TrainerBuilder configured(const Dataset& ds, const std::string& strategy, int p,
                          const std::string& partitioner, const GcnConfig& cfg) {
  TrainerBuilder b(ds);
  b.gcn(cfg);
  if (strategy == "serial") {
    b.strategy("serial");
  } else {
    const int c = strategy.rfind("1.5d", 0) == 0 ? 2 : 1;
    b.strategy(strategy).ranks(p, c).partitioner(partitioner);
  }
  return b;
}

std::string scratch_ckpt(const std::string& stem) {
  return (std::filesystem::temp_directory_path() / (stem + ".ckpt")).string();
}

/// One kill-at-epoch-k scenario: uninterrupted reference vs kill + resume.
/// Serial jobs snapshot/restore by hand; distributed jobs take the real
/// path — a FaultPlan KillSpec aborts the cluster at kill_epoch and
/// train()'s recovery loop restores from the periodic auto-checkpoint.
void run_preemption(const Dataset& ds, const std::string& strategy, int p,
                    const std::string& partitioner, int total_epochs,
                    int kill_epoch, Table& table) {
  const GcnConfig cfg = bench_gcn(ds, total_epochs);

  auto reference = configured(ds, strategy, p, partitioner, cfg).build();
  reference->train();

  Record rec;
  rec.scenario = "resume";
  rec.dataset = ds.name;
  rec.strategy = strategy;
  rec.partitioner = strategy == "serial" ? "" : partitioner;
  rec.p_from = strategy == "serial" ? 0 : p;
  rec.p_to = rec.p_from;
  rec.kill_epoch = kill_epoch;
  rec.total_epochs = total_epochs;

  std::unique_ptr<Trainer> survivor;
  if (strategy == "serial") {
    auto victim = configured(ds, strategy, p, partitioner, cfg).build();
    for (int e = 0; e < kill_epoch; ++e) (void)victim->run_epoch();
    std::stringstream snapshot;
    {
      WallTimer t;
      victim->save(snapshot);
      rec.save_seconds = t.seconds();
    }
    rec.snapshot_bytes = snapshot.str().size();
    victim.reset();  // the preemption: only the snapshot survives
    {
      WallTimer t;
      survivor = TrainerBuilder(ds).resume(snapshot);
      rec.load_seconds = t.seconds();
    }
    survivor->train();
  } else {
    const std::string path = scratch_ckpt("bench_ckpt_preempt");
    std::filesystem::remove(path);
    FaultSpec spec;
    spec.kills.push_back(KillSpec{kill_epoch, /*rank=*/p / 2,
                                  /*after_sends=*/0, /*permanent=*/false});
    survivor = configured(ds, strategy, p, partitioner, cfg)
                   .auto_checkpoint(path, 1)
                   .fault_plan(spec)
                   .fault_recovery(FaultRecovery::kCheckpointRestart)
                   .build();
    survivor->train();
    const RecoveryStats& rs = survivor->result().recovery;
    rec.save_seconds = rs.last_save_seconds;
    rec.load_seconds = rs.recovery_seconds;
    rec.snapshot_bytes = static_cast<std::size_t>(rs.snapshot_bytes);
    if (rs.kills != 1 || rs.restores != 1) {
      std::cerr << "KILL NOT RECOVERED: " << strategy << " expected 1 kill/1 "
                << "restore, got " << rs.kills << "/" << rs.restores << "\n";
      ++g_violations;
    }
    std::filesystem::remove(path);
  }
  rec.repartition_seconds = survivor->result().partition_wall_seconds;

  rec.ok = same_trajectory_bitwise(survivor->result().epochs,
                                   reference->result().epochs) &&
           same_weights(model_of(*survivor), model_of(*reference)) &&
           same_phase_volumes(survivor->result(), reference->result());
  if (!rec.ok) {
    std::cerr << "BITWISE RESUME VIOLATION: " << strategy << " on " << ds.name
              << " killed at epoch " << kill_epoch << "\n";
    ++g_violations;
  }
  g_records.push_back(rec);
  table.add_row({strategy, std::to_string(rec.p_from) + "->" +
                               std::to_string(rec.p_to),
                 std::to_string(kill_epoch),
                 std::to_string(rec.snapshot_bytes / 1024) + " KiB",
                 ms(rec.save_seconds), ms(rec.load_seconds),
                 ms(rec.repartition_seconds), rec.ok ? "bitwise" : "FAIL"});
}

/// Elastic restart: kill at p, resume at an ARBITRARY p' (not just the
/// p-1 the in-trainer recovery loop absorbs), verify serial parity. The
/// kill is a FaultPlan KillSpec under FaultRecovery::kNone, so the typed
/// RankKilledError reaches this harness, which plays the external job
/// scheduler: it picks the new rank count and resumes the on-disk
/// auto-checkpoint the victim left behind.
void run_elastic(const Dataset& ds, const std::string& strategy, int p_from,
                 int p_to, const std::string& partitioner, int total_epochs,
                 int kill_epoch, Table& table) {
  const GcnConfig cfg = bench_gcn(ds, total_epochs);

  auto serial = configured(ds, "serial", 1, partitioner, cfg).build();
  const auto serial_metrics = serial->train();

  Record rec;
  rec.scenario = "elastic";
  rec.dataset = ds.name;
  rec.strategy = strategy;
  rec.partitioner = partitioner;
  rec.p_from = p_from;
  rec.p_to = p_to;
  rec.kill_epoch = kill_epoch;
  rec.total_epochs = total_epochs;

  const std::string path = scratch_ckpt("bench_ckpt_elastic");
  std::filesystem::remove(path);
  FaultSpec spec;
  spec.kills.push_back(KillSpec{kill_epoch, /*rank=*/p_from / 2,
                                /*after_sends=*/0, /*permanent=*/true});
  auto victim = configured(ds, strategy, p_from, partitioner, cfg)
                    .auto_checkpoint(path, 1)
                    .fault_plan(spec)
                    .build();  // FaultRecovery::kNone: the kill escapes
  bool killed = false;
  try {
    victim->train();
  } catch (const RankKilledError&) {
    killed = true;
  }
  if (!killed) {
    std::cerr << "SCHEDULED KILL NEVER FIRED: " << strategy << " p=" << p_from
              << " epoch " << kill_epoch << "\n";
    ++g_violations;
  }
  rec.save_seconds = victim->result().recovery.last_save_seconds;
  rec.snapshot_bytes =
      static_cast<std::size_t>(victim->result().recovery.snapshot_bytes);
  victim.reset();  // the preemption: only the on-disk snapshot survives

  std::unique_ptr<Trainer> resumed;
  {
    WallTimer t;
    std::ifstream snapshot(path, std::ios::binary);
    resumed = TrainerBuilder(ds).ranks(p_to).resume(snapshot);
    rec.load_seconds = t.seconds();
  }
  resumed->train();
  std::filesystem::remove(path);
  rec.repartition_seconds = resumed->result().partition_wall_seconds;

  const auto& metrics = resumed->result().epochs;
  rec.ok = metrics.size() == serial_metrics.size();
  for (std::size_t e = 0; rec.ok && e < metrics.size(); ++e) {
    rec.ok = std::abs(metrics[e].loss - serial_metrics[e].loss) <=
             5e-3 * std::max(1.0, serial_metrics[e].loss);
  }
  if (!rec.ok) {
    std::cerr << "ELASTIC PARITY VIOLATION: " << strategy << " " << p_from
              << "->" << p_to << " on " << ds.name << "\n";
    ++g_violations;
  }
  g_records.push_back(rec);
  table.add_row({strategy, std::to_string(p_from) + "->" + std::to_string(p_to),
                 std::to_string(kill_epoch),
                 std::to_string(rec.snapshot_bytes / 1024) + " KiB",
                 ms(rec.save_seconds), ms(rec.load_seconds),
                 ms(rec.repartition_seconds),
                 rec.ok ? "parity" : "FAIL"});
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  preamble("Checkpoint — preemption & elastic-restart study",
           "Schedules a FaultPlan rank kill at a random epoch and reports\n"
           "recovery overhead (snapshot bytes, save/recover wall-clock,\n"
           "re-partition cost). Distributed kills recover through train()'s\n"
           "closed loop; elastic p->p' restarts resume the on-disk snapshot\n"
           "by hand. Same-geometry resume is asserted BITWISE identical to\n"
           "an uninterrupted run; elastic restarts are asserted\n"
           "serial-parity. Exit 1 on violation.");

  const std::uint64_t seed = 20260730;
  std::cout << "kill-epoch seed: " << seed << (smoke ? " (smoke)" : "") << "\n";
  Rng rng(seed);

  const DatasetScale scale = smoke ? DatasetScale::kTiny : DatasetScale::kSmall;
  const Dataset ds = make_amazon_sim(scale);
  const int total_epochs = smoke ? 6 : 10;
  auto kill = [&] {
    return smoke ? total_epochs / 2
                 : 1 + static_cast<int>(rng.next_below(
                           static_cast<std::uint64_t>(total_epochs - 1)));
  };

  print_banner(std::cout, ds.name + " — kill/resume recovery overhead");
  Table table({"strategy", "p", "kill@", "snapshot", "save", "recover",
               "repartition", "verdict"});

  run_preemption(ds, "serial", 1, "", total_epochs, kill(), table);
  run_preemption(ds, "1d-sparse", 4, "gvb", total_epochs, kill(), table);
  run_preemption(ds, "1d-overlap", 4, "gvb", total_epochs, kill(), table);
  if (!smoke) {
    run_preemption(ds, "1d-sparse", 8, "metis", total_epochs, kill(), table);
    run_preemption(ds, "1.5d-sparse", 4, "block", total_epochs, kill(), table);
    run_preemption(ds, "2d-sparse", 4, "metis", total_epochs, kill(), table);
  }

  run_elastic(ds, "1d-sparse", 4, 2, "gvb", total_epochs, kill(), table);
  if (!smoke) {
    run_elastic(ds, "1d-sparse", 4, 8, "gvb", total_epochs, kill(), table);
    run_elastic(ds, "1d-overlap", 8, 4, "metis", total_epochs, kill(), table);
  }
  table.print(std::cout);

  emit_json("BENCH_checkpoint.json");
  if (g_violations > 0) {
    std::cerr << g_violations << " checkpoint invariant violation(s)\n";
    return 1;
  }
  std::cout << "all resume/elastic invariants held\n";
  return 0;
}
