// Reproduces Figure 4: granular per-epoch timing breakdown of the 1D
// schemes — local computation vs broadcast vs all-to-all — on Reddit and
// Amazon analogues.
//
// Expected shapes (paper §7.1): CAGNET's bars are dominated by bcast;
// SA replaces bcast with a smaller alltoall for p >= 32; SA+GVB shrinks the
// alltoall further (roughly 2x) while local compute stays comparable
// (it is the same SpMM work in every scheme).

#include <iostream>

#include "bench_common.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

void run_dataset(const Dataset& ds, const std::vector<int>& ps) {
  print_banner(std::cout, ds.name);
  Table table({"p", "scheme", "compute ms", "bcast ms", "alltoall ms",
               "allreduce ms", "total ms", "comm MB/epoch"});
  for (int p : ps) {
    for (const SchemeSpec& scheme : {kCagnet1d, kSa1d, kSaGvb1d}) {
      const auto r = run_scheme(ds, scheme, p);
      double mb = 0;
      for (const auto& [name, vol] : r.phase_volumes) mb += vol.megabytes_per_epoch;
      table.add_row({std::to_string(p), scheme.label, ms(r.modeled_epoch.compute),
                     ms(r.modeled_epoch.bcast), ms(r.modeled_epoch.alltoall),
                     ms(r.modeled_epoch.allreduce),
                     ms(r.modeled_epoch.total()), Table::num(mb, 4)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  preamble("Figure 4 — 1D per-phase breakdown",
           "Per-epoch modeled time split by phase; comm MB is the exact\n"
           "recorded volume (all phases, all pairs).");
  run_dataset(make_reddit_sim(DatasetScale::kSmall), {16, 64});
  run_dataset(make_amazon_sim(DatasetScale::kSmall), {16, 64, 256});
  std::cout << "\nShape check: CAGNET time is almost all bcast; SA swaps it\n"
               "for a smaller alltoall; SA+GVB halves the alltoall again.\n";
  return 0;
}
