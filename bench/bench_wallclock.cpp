// Wall-clock scaling of the thread-pool parallel runtime: multilevel
// partitioning end-to-end and the blocked SpMM / tiled GEMM kernels, swept
// across thread counts on the synthetic datasets.
//
// Unlike every other bench (which reports alpha-beta MODELED times), this
// one measures real seconds — it seeds the perf trajectory with hardware
// numbers and guards the runtime's two contracts:
//
//   * determinism: for a fixed seed, partition assignments must be
//     IDENTICAL at every thread count (round-synchronous matching, fixed
//     chunk boundaries);
//   * kernel parity: blocked SpMM/GEMM outputs must be bitwise equal to
//     their single-thread runs.
//
// Violations exit nonzero so CI can gate on this binary. Results are also
// appended to BENCH_wallclock.json (records: bench, dataset, partitioner,
// threads, seconds, speedup) which CI uploads as a workflow artifact.
//
// Usage: bench_wallclock [--smoke]
//   --smoke  tiny datasets, threads {1,2} — the CI configuration.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "dense/gemm.hpp"
#include "sparse/spmm.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

struct Record {
  std::string bench;
  std::string dataset;
  std::string partitioner;  // empty for kernel rows
  int threads = 1;
  double seconds = 0;
  double speedup = 1.0;
};

std::vector<Record> g_records;

void emit_json(const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const Record& r = g_records[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"dataset\": \"" << r.dataset
        << "\", \"partitioner\": \"" << r.partitioner
        << "\", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
        << ", \"speedup\": " << r.speedup << "}"
        << (i + 1 < g_records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "\nwrote " << g_records.size() << " records to " << path << "\n";
}

/// Median-of-3 wall-clock runs of fn() — enough smoothing for a scaling
/// table without google-benchmark machinery.
template <typename Fn>
double timed(const Fn& fn) {
  double best = 0;
  std::vector<double> runs;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer t;
    fn();
    runs.push_back(t.seconds());
  }
  std::sort(runs.begin(), runs.end());
  best = runs[1];
  return best;
}

void bench_partitioners(const Dataset& ds, const std::vector<int>& thread_counts) {
  print_banner(std::cout, ds.name + " — multilevel partitioning");
  Table table({"partitioner", "threads", "seconds", "speedup"});
  PartitionerOptions opts;
  opts.seed = 99;
  const int k = 16;
  for (const char* name : {"metis", "gvb"}) {
    double base_seconds = 0;
    std::vector<vid_t> base_assignment;
    for (int t : thread_counts) {
      set_parallel_threads(t);
      Partition part;
      const double seconds = timed([&] {
        part = make_partitioner(name, opts)->partition(ds.adjacency, k);
      });
      if (t == thread_counts.front()) {
        base_seconds = seconds;
        base_assignment = part.part_of;
      } else if (part.part_of != base_assignment) {
        // The determinism contract of the parallel coarsener is broken —
        // fail loudly so CI catches it.
        std::cerr << "DETERMINISM VIOLATION: " << name << " on " << ds.name
                  << " with seed " << opts.seed << " differs at " << t
                  << " threads vs " << thread_counts.front() << "\n";
        std::exit(1);
      }
      const double speedup = seconds > 0 ? base_seconds / seconds : 1.0;
      g_records.push_back({"partition", ds.name, name, t, seconds, speedup});
      table.add_row({name, std::to_string(t), Table::num(seconds, 4),
                     Table::num(speedup, 3)});
    }
  }
  table.print(std::cout);
}

void bench_kernels(const Dataset& ds, const std::vector<int>& thread_counts) {
  print_banner(std::cout, ds.name + " — blocked kernel throughput");
  Table table({"kernel", "threads", "seconds", "speedup"});
  Rng rng(4242);
  const vid_t n = ds.n_vertices();
  const vid_t f = 64;
  const Matrix h = Matrix::random_uniform(n, f, rng);
  const Matrix w = Matrix::random_uniform(f, f, rng);
  const int spmm_iters = 5;

  struct Kernel {
    const char* name;
    std::function<Matrix()> run;
  };
  const std::vector<Kernel> kernels = {
      {"spmm",
       [&] {
         Matrix z(n, f);
         for (int i = 0; i < spmm_iters; ++i) spmm_accumulate(ds.adjacency, h, z);
         return z;
       }},
      {"gemm_at_b", [&] { return gemm_at_b(h, h); }},
      {"gemm_a_bt", [&] { return gemm_a_bt(h, w); }},
  };
  for (const auto& kernel : kernels) {
    double base_seconds = 0;
    Matrix base_out;
    for (int t : thread_counts) {
      set_parallel_threads(t);
      Matrix out;
      const double seconds = timed([&] { out = kernel.run(); });
      if (t == thread_counts.front()) {
        base_seconds = seconds;
        base_out = std::move(out);
      } else if (!(out == base_out)) {
        std::cerr << "PARITY VIOLATION: " << kernel.name << " on " << ds.name
                  << " is not bitwise identical at " << t << " threads\n";
        std::exit(1);
      }
      const double speedup = seconds > 0 ? base_seconds / seconds : 1.0;
      g_records.push_back(
          {kernel.name, ds.name, "", t, seconds, speedup});
      table.add_row({kernel.name, std::to_string(t), Table::num(seconds, 4),
                     Table::num(speedup, 3)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  preamble("Wall-clock — thread-pool scaling",
           "Real measured seconds (not alpha-beta model): multilevel\n"
           "partitioning end-to-end and blocked SpMM/GEMM throughput vs\n"
           "thread count. Partition assignments are asserted identical\n"
           "across thread counts (fixed seed) and kernel outputs bitwise\n"
           "equal — exit 1 on violation.");

  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const DatasetScale scale = smoke ? DatasetScale::kSmall : DatasetScale::kDefault;

  // papers-sim is the largest synthetic dataset — the acceptance row for
  // the >= 2x @ 8 threads partitioning criterion; amazon-sim adds the
  // sparse-irregular regime.
  const Dataset amazon = make_amazon_sim(scale);
  bench_partitioners(amazon, thread_counts);
  bench_kernels(amazon, thread_counts);
  if (!smoke) {
    const Dataset papers = make_papers_sim(scale);
    bench_partitioners(papers, thread_counts);
    bench_kernels(papers, thread_counts);
  }

  emit_json("BENCH_wallclock.json");
  set_parallel_threads(0);
  return 0;
}
