// Wall-clock scaling of the thread-pool parallel runtime: multilevel
// partitioning end-to-end and the blocked SpMM / tiled GEMM kernels, swept
// across thread counts — on the synthetic datasets, and with --large on
// streamed multi-million-edge graphs (rmat_csr / powerlaw_csr).
//
// Unlike every other bench (which reports alpha-beta MODELED times), this
// one measures real seconds — it seeds the perf trajectory with hardware
// numbers and guards the runtime's three contracts:
//
//   * determinism: for a fixed seed, partition assignments must be
//     IDENTICAL at every thread count (round-synchronous matching, fixed
//     chunk boundaries);
//   * kernel parity: blocked SpMM/GEMM outputs must be bitwise equal to
//     their single-thread runs, AND the SELL-C-sigma SpMM must be bitwise
//     equal to the CSR SpMM (sparse/sell.hpp's format contract);
//   * scaling: with --large on a machine with >= 8 hardware threads, the
//     CSR SpMM must reach >= 4x speedup at 8 threads (skipped with a
//     printed notice on smaller hosts — the container this grows in has 1).
//
// Violations exit nonzero so CI can gate on this binary. Results are also
// appended to BENCH_wallclock.json (records: bench, dataset, partitioner,
// format, threads, seconds, speedup, gbps) which CI uploads as a workflow
// artifact; bench_schema_check validates the record shape.
//
// GB/s is algorithmic bytes / seconds: nnz*8 + nnz*f*4 + 2*n*f*4 per SpMM
// sweep (indices+values once, one gathered H row per nonzero, Z touched
// twice), and the analogous read/write footprint for the GEMM variants.
// SELL rows use the SAME byte count as CSR, so its padding overhead shows
// up as lower effective GB/s rather than being normalized away.
//
// Usage: bench_wallclock [--smoke | --large]
//   --smoke  tiny datasets, threads {1,2} — the CI configuration.
//   --large  streamed generator graphs (millions of edges), threads
//            {1,2,4,8}, scaling self-assert armed.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "dense/gemm.hpp"
#include "graph/generators.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmm.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

struct Record {
  std::string bench;
  std::string dataset;
  std::string partitioner;  // empty for kernel rows
  std::string format;       // "csr"/"sell" for kernel rows, empty otherwise
  int threads = 1;
  double seconds = 0;
  double speedup = 1.0;
  double gbps = 0;  // algorithmic GB/s; 0 for partition rows
};

std::vector<Record> g_records;

void emit_json(const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const Record& r = g_records[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"dataset\": \"" << r.dataset
        << "\", \"partitioner\": \"" << r.partitioner << "\", \"format\": \""
        << r.format << "\", \"threads\": " << r.threads
        << ", \"seconds\": " << r.seconds << ", \"speedup\": " << r.speedup
        << ", \"gbps\": " << r.gbps << "}"
        << (i + 1 < g_records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "\nwrote " << g_records.size() << " records to " << path << "\n";
}

/// Median wall-clock of `reps` runs of fn() — enough smoothing for a
/// scaling table without google-benchmark machinery.
template <typename Fn>
double timed(const Fn& fn, int reps = 3) {
  std::vector<double> runs;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    fn();
    runs.push_back(t.seconds());
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

void bench_partitioners(const std::string& name, const CsrMatrix& a,
                        const std::vector<int>& thread_counts, int reps = 3) {
  print_banner(std::cout, name + " — multilevel partitioning");
  Table table({"partitioner", "threads", "seconds", "speedup"});
  PartitionerOptions opts;
  opts.seed = 99;
  const int k = 16;
  for (const char* pname : {"metis", "gvb"}) {
    double base_seconds = 0;
    std::vector<vid_t> base_assignment;
    for (int t : thread_counts) {
      set_parallel_threads(t);
      Partition part;
      const double seconds = timed(
          [&] { part = make_partitioner(pname, opts)->partition(a, k); }, reps);
      if (t == thread_counts.front()) {
        base_seconds = seconds;
        base_assignment = part.part_of;
      } else if (part.part_of != base_assignment) {
        // The determinism contract of the parallel coarsener is broken —
        // fail loudly so CI catches it.
        std::cerr << "DETERMINISM VIOLATION: " << pname << " on " << name
                  << " with seed " << opts.seed << " differs at " << t
                  << " threads vs " << thread_counts.front() << "\n";
        std::exit(1);
      }
      const double speedup = seconds > 0 ? base_seconds / seconds : 1.0;
      g_records.push_back(
          {"partition", name, pname, "", t, seconds, speedup, 0.0});
      table.add_row({pname, std::to_string(t), Table::num(seconds, 4),
                     Table::num(speedup, 3)});
    }
  }
  table.print(std::cout);
}

void bench_kernels(const std::string& name, const CsrMatrix& a,
                   const std::vector<int>& thread_counts) {
  print_banner(std::cout, name + " — blocked kernel throughput");
  Table table({"kernel", "format", "threads", "seconds", "GB/s", "speedup"});
  Rng rng(4242);
  const vid_t n = a.n_rows();
  const vid_t f = 64;
  const Matrix h = Matrix::random_uniform(n, f, rng);
  const Matrix w = Matrix::random_uniform(f, f, rng);
  const int spmm_iters = 5;
  const double dn = static_cast<double>(n), df = static_cast<double>(f);
  const double dnnz = static_cast<double>(a.nnz());
  // Algorithmic traffic per run() call (see the file comment).
  const double spmm_bytes =
      spmm_iters * (dnnz * 8 + dnnz * df * 4 + 2 * dn * df * 4);
  const double at_b_bytes = 2 * dn * df * 4 + df * df * 4;
  const double a_bt_bytes = 2 * dn * df * 4 + df * df * 4;

  // The SELL twin is built once (off the clock); the bench measures the
  // multiply, not the conversion.
  const SellMatrix sell = SellMatrix::from_csr(a, KernelConfig{});

  struct Kernel {
    const char* name;
    const char* format;
    double bytes;
    std::function<Matrix()> run;
  };
  const std::vector<Kernel> kernels = {
      {"spmm", "csr", spmm_bytes,
       [&] {
         Matrix z(n, f);
         for (int i = 0; i < spmm_iters; ++i) spmm_accumulate(a, h, z);
         return z;
       }},
      {"spmm", "sell", spmm_bytes,
       [&] {
         Matrix z(n, f);
         for (int i = 0; i < spmm_iters; ++i) spmm_accumulate(sell, h, z);
         return z;
       }},
      {"gemm_at_b", "csr", at_b_bytes, [&] { return gemm_at_b(h, h); }},
      {"gemm_a_bt", "csr", a_bt_bytes, [&] { return gemm_a_bt(h, w); }},
  };
  // Cross-format parity: the first "spmm" row's single-thread output is
  // the reference every later spmm row (any format, any thread count) must
  // match bitwise.
  Matrix spmm_reference;
  for (const auto& kernel : kernels) {
    double base_seconds = 0;
    Matrix base_out;
    for (int t : thread_counts) {
      set_parallel_threads(t);
      Matrix out;
      const double seconds = timed([&] { out = kernel.run(); });
      if (t == thread_counts.front()) {
        base_seconds = seconds;
        base_out = std::move(out);
        if (std::strcmp(kernel.name, "spmm") == 0) {
          if (spmm_reference.n_rows() == 0) {
            spmm_reference = base_out;
          } else if (!(base_out == spmm_reference)) {
            std::cerr << "FORMAT PARITY VIOLATION: spmm[" << kernel.format
                      << "] on " << name
                      << " is not bitwise identical to spmm[csr]\n";
            std::exit(1);
          }
        }
      } else if (!(out == base_out)) {
        std::cerr << "PARITY VIOLATION: " << kernel.name << "[" << kernel.format
                  << "] on " << name << " is not bitwise identical at " << t
                  << " threads\n";
        std::exit(1);
      }
      const double speedup = seconds > 0 ? base_seconds / seconds : 1.0;
      const double gbps = seconds > 0 ? kernel.bytes / seconds / 1e9 : 0.0;
      g_records.push_back({kernel.name, name, "", kernel.format, t, seconds,
                           speedup, gbps});
      table.add_row({kernel.name, kernel.format, std::to_string(t),
                     Table::num(seconds, 4), Table::num(gbps, 3),
                     Table::num(speedup, 3)});
    }
  }
  table.print(std::cout);
}

/// The --large scaling gate: CSR SpMM must reach >= 4x at 8 threads on at
/// least one of the large graphs. Skipped (with a notice) when the host
/// has fewer than 8 hardware threads or 8 wasn't in the sweep.
void assert_large_scaling(const std::vector<int>& thread_counts) {
  const unsigned hw = std::thread::hardware_concurrency();
  const bool swept8 = std::find(thread_counts.begin(), thread_counts.end(),
                                8) != thread_counts.end();
  double best = 0;
  std::string best_ds;
  for (const Record& r : g_records) {
    if (r.bench == "spmm" && r.format == "csr" && r.threads == 8 &&
        r.speedup > best) {
      best = r.speedup;
      best_ds = r.dataset;
    }
  }
  if (hw < 8 || !swept8) {
    std::cout << "\nscaling assert SKIPPED: host has " << hw
              << " hardware threads (need >= 8 for the 4x @ 8-thread gate)\n";
    return;
  }
  std::cout << "\nscaling assert: best spmm[csr] speedup @ 8 threads = "
            << best << " (" << best_ds << ")\n";
  if (best < 4.0) {
    std::cerr << "SCALING VIOLATION: spmm[csr] reached only " << best
              << "x at 8 threads (gate: >= 4x)\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--large") == 0) large = true;
  }
  preamble("Wall-clock — thread-pool scaling",
           "Real measured seconds (not alpha-beta model): multilevel\n"
           "partitioning end-to-end and blocked SpMM/GEMM throughput vs\n"
           "thread count. Partition assignments are asserted identical\n"
           "across thread counts (fixed seed), kernel outputs bitwise\n"
           "equal across thread counts AND formats — exit 1 on violation.");

  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  if (large) {
    // Streamed multi-million-edge regime: graphs land directly in CSR
    // (~8 bytes per stored arc peak), no COO intermediate.
    const int scale = 18, edge_factor = 16;
    Rng rng(7);
    const CsrMatrix rmat_a = rmat_csr(scale, edge_factor, rng);
    std::cout << "\nrmat-18:     n = " << rmat_a.n_rows()
              << ", stored arcs = " << rmat_a.nnz() << "\n";
    const CsrMatrix pl_a =
        powerlaw_csr(vid_t{1} << scale, edge_factor, 0.9, rng);
    std::cout << "powerlaw-18: n = " << pl_a.n_rows()
              << ", stored arcs = " << pl_a.nnz() << "\n";
    bench_kernels("rmat-18", rmat_a, thread_counts);
    bench_kernels("powerlaw-18", pl_a, thread_counts);
    // Partitioning at this size is seconds per run — a single rep keeps
    // the tier's wall-clock sane while still swept over thread counts.
    bench_partitioners("rmat-18", rmat_a, thread_counts, /*reps=*/1);
    assert_large_scaling(thread_counts);
  } else {
    const DatasetScale scale =
        smoke ? DatasetScale::kSmall : DatasetScale::kDefault;
    // papers-sim is the largest synthetic dataset — the acceptance row for
    // the >= 2x @ 8 threads partitioning criterion; amazon-sim adds the
    // sparse-irregular regime.
    const Dataset amazon = make_amazon_sim(scale);
    bench_partitioners(amazon.name, amazon.adjacency, thread_counts);
    bench_kernels(amazon.name, amazon.adjacency, thread_counts);
    if (!smoke) {
      const Dataset papers = make_papers_sim(scale);
      bench_partitioners(papers.name, papers.adjacency, thread_counts);
      bench_kernels(papers.name, papers.adjacency, thread_counts);
    }
  }

  emit_json("BENCH_wallclock.json");
  set_parallel_threads(0);
  return 0;
}
