// Ablation: sensitivity of the reproduction's conclusions to the alpha-beta
// cost-model parameters. The paper's qualitative claims should be robust to
// the exact link speed and latency (they argue from volume, not from one
// machine); this bench sweeps bandwidth and latency around the Perlmutter
// calibration and reports where (if anywhere) the scheme ranking flips.

#include <iostream>

#include "bench_common.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

struct ModelVariant {
  const char* label;
  double beta_factor;   // multiply both betas (lower = faster network)
  double alpha_factor;  // multiply both alphas
};

}  // namespace

int main(int argc, char** argv) {
  if (handle_list_flag(argc, argv)) return 0;
  preamble("Ablation — cost-model sensitivity",
           "CAGNET vs SA vs SA+GVB ranking on amazon-sim (p=64) under\n"
           "perturbed network parameters. Volumes are identical across\n"
           "rows; only the time model changes.");

  const Dataset ds = make_amazon_sim(DatasetScale::kSmall);
  const int p = 64;

  const std::vector<ModelVariant> variants = {
      {"calibrated (25 GB/s)", 1.0, 1.0},
      {"4x faster network", 0.25, 1.0},
      {"4x slower network", 4.0, 1.0},
      {"10x higher latency", 1.0, 10.0},
      {"latency-free", 1.0, 0.0},
  };

  Table table({"model", "CAGNET ms", "SA ms", "SA+GVB ms", "winner"});
  // (Totals are bulk-synchronous; see the overlap row appended last.)
  for (const auto& v : variants) {
    // The alpha/beta split of a phase is not recoverable from the summed
    // EpochCost, so each variant re-runs with an adjusted model (volumes
    // are deterministic, so only the modeling changes between rows).
    std::vector<double> totals;
    for (const SchemeSpec& scheme : {kCagnet1d, kSa1d, kSaGvb1d}) {
      ExperimentSpec spec;
      spec.strategy = scheme.strategy;
      spec.partitioner = scheme.partitioner;
      spec.p = p;
      spec.cost_model.beta_intra *= v.beta_factor;
      spec.cost_model.beta_inter *= v.beta_factor;
      spec.cost_model.alpha_intra *= v.alpha_factor;
      spec.cost_model.alpha_inter *= v.alpha_factor;
      totals.push_back(run_experiment(ds, spec).modeled_epoch_seconds());
    }
    const char* names[] = {"CAGNET", "SA", "SA+GVB"};
    int best = 0;
    for (int i = 1; i < 3; ++i) {
      if (totals[static_cast<std::size_t>(i)] < totals[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    table.add_row({v.label, ms(totals[0]), ms(totals[1]), ms(totals[2]),
                   names[best]});
  }
  // One extra row: idealized comm/compute overlap under the calibrated
  // model (asynchronous execution bound).
  {
    std::vector<double> totals;
    for (const SchemeSpec& scheme : {kCagnet1d, kSa1d, kSaGvb1d}) {
      totals.push_back(
          run_scheme(ds, scheme, p).modeled_epoch.total_overlapped());
    }
    const char* names[] = {"CAGNET", "SA", "SA+GVB"};
    int best = 0;
    for (int i = 1; i < 3; ++i) {
      if (totals[static_cast<std::size_t>(i)] < totals[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    table.add_row({"full comm/compute overlap", ms(totals[0]), ms(totals[1]),
                   ms(totals[2]), names[best]});
  }
  table.print(std::cout);
  std::cout << "\nShape check: SA+GVB stays the winner across realistic\n"
               "parameter ranges; only a pathologically fast network (where\n"
               "volume stops mattering) erodes the gap. Even granting the\n"
               "oblivious baseline perfect overlap does not save it: its\n"
               "comm side alone exceeds the sparsity-aware totals.\n";
  return 0;
}
