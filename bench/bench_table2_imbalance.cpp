// Reproduces Table 2: "Average and maximum amount of data communicated in a
// single SpMM where the sparse matrix is distributed with METIS graph
// partitioner (instance: Amazon, f = 300)".
//
// Paper's rows (for reference, 14.2M-vertex Amazon):
//   p     avg MB   max MB   imbalance %
//   16    199.6    333.5    67.1
//   32    132.9    241.6    81.8
//   64    83.9     164.0    95.4
//   128   52.5     117.3    123.3
//   256   32.6     86.4     164.9
//
// Expected shape on the scaled Amazon analogue: average volume per process
// falls with p while the max/avg imbalance *rises* with p — the motivation
// for the volume-balancing partitioner. MB values are reported at the
// paper's f = 300 so the rows are directly comparable in spirit.

#include <iostream>

#include "bench_support/tableio.hpp"
#include "common/timer.hpp"
#include "graph/datasets.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"

using namespace sagnn;

int main() {
  const Dataset ds = make_amazon_sim(DatasetScale::kDefault);
  const vid_t paper_f = 300;

  std::cout << "Table 2 analogue: per-SpMM communication of the METIS-like\n"
               "partitioner on amazon-sim (n=" << ds.n_vertices()
            << ", nnz=" << ds.n_edges() << "), volumes at f=" << paper_f
            << ".\n";

  Table table({"p", "avg MB", "max MB", "load imbalance %", "edgecut",
               "partition s"});
  for (int p : {16, 32, 64, 128, 256}) {
    WallTimer timer;
    const auto part = EdgeCutPartitioner().partition(ds.adjacency, p);
    const double secs = timer.seconds();
    const auto stats = compute_volume_stats(ds.adjacency, part);
    table.add_row({std::to_string(p), Table::num(stats.avg_send_megabytes(paper_f)),
                   Table::num(stats.max_send_megabytes(paper_f)),
                   Table::num(stats.send_imbalance_percent(), 3),
                   std::to_string(stats.edgecut), Table::num(secs, 3)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape check: imbalance %% should increase with p\n"
               "(67%% -> 165%% in the paper) while avg MB decreases.\n";
  return 0;
}
