// Microbenchmarks of the local SpMM kernel (the csrmm2 stand-in): scaling
// in nnz and feature width, plus the compacted-column variant used by the
// sparsity-aware algorithms.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/blocks.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

void BM_SpmmByScale(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const vid_t f = static_cast<vid_t>(state.range(1));
  Rng rng(1);
  const CsrMatrix a = CsrMatrix::from_coo(rmat(scale, 8, rng));
  const Matrix h = Matrix::random_uniform(a.n_cols(), f, rng);
  Matrix z(a.n_rows(), f);
  for (auto _ : state) {
    z.set_zero();
    spmm_accumulate(a, h, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * f);
}
BENCHMARK(BM_SpmmByScale)
    ->Args({10, 16})
    ->Args({12, 16})
    ->Args({14, 16})
    ->Args({12, 4})
    ->Args({12, 64});

void BM_SpmmCompactedVsPlain(benchmark::State& state) {
  // Compacted multiply on a narrow column block: same nnz, denser columns.
  const bool compacted = state.range(0) != 0;
  Rng rng(2);
  const CsrMatrix a = CsrMatrix::from_coo(rmat(12, 8, rng));
  const CsrMatrix block = extract_row_block(a, {0, a.n_rows() / 8});
  const vid_t f = 16;
  if (compacted) {
    const CompactedBlock cb = compact_columns(block);
    const Matrix h = Matrix::random_uniform(cb.matrix.n_cols(), f, rng);
    Matrix z(cb.matrix.n_rows(), f);
    for (auto _ : state) {
      z.set_zero();
      spmm_compacted_accumulate(cb.matrix, h, z);
      benchmark::DoNotOptimize(z.data());
    }
  } else {
    const Matrix h = Matrix::random_uniform(block.n_cols(), f, rng);
    Matrix z(block.n_rows(), f);
    for (auto _ : state) {
      z.set_zero();
      spmm_accumulate(block, h, z);
      benchmark::DoNotOptimize(z.data());
    }
  }
}
BENCHMARK(BM_SpmmCompactedVsPlain)->Arg(0)->Arg(1);

void BM_GatherRows(benchmark::State& state) {
  // The pack step of Algorithm 1 (T <- H[NnzCols]).
  Rng rng(3);
  const vid_t n = 1 << 14;
  const Matrix h = Matrix::random_uniform(n, 32, rng);
  std::vector<vid_t> rows;
  for (vid_t v = 0; v < n; v += 3) rows.push_back(v);
  for (auto _ : state) {
    Matrix packed = h.gather_rows(rows);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(state.iterations() * rows.size() * 32 * sizeof(real_t));
}
BENCHMARK(BM_GatherRows);

}  // namespace
}  // namespace sagnn
