// Online-serving study for the src/serve/ subsystem: load a trained
// checkpoint through serve::ModelLoader (no Trainer constructed), stand up
// an InferenceEngine over a GraphMutator, and replay a Zipf-distributed
// per-node query stream interleaved with streaming edge updates at a
// configurable rate — the standard skewed-access serving workload.
//
// Reported per cache configuration (capacity sweep: disabled / tiny /
// unbounded): queries/sec, p50/p99 query latency, cache hit rate, and the
// mutator's compaction/re-partition counts. While running, the bench
// VERIFIES the subsystem's core promise:
//
//   * cached answers are BITWISE identical to cache-bypassed answers,
//     continuously sampled throughout the stream (i.e. invalidation is
//     exact — stale cache entries would show up here);
//   * per-node answers are BITWISE identical to a full-graph forward pass
//     with the training kernels on the materialized graph;
//   * compacting the delta overlay changes NO answer bitwise, and the
//     aggregation cache survives compaction.
//
// Any violation exits nonzero so CI can gate on this binary. Results are
// appended to BENCH_serving.json, which CI uploads as a workflow artifact
// next to BENCH_wallclock.json and BENCH_checkpoint.json.
//
// Usage: bench_serving [--smoke]
//   --smoke  tiny dataset, short stream — the CI configuration.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "gnn/trainer.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_loader.hpp"

using namespace sagnn;
using namespace sagnn::bench;

namespace {

struct Record {
  std::string dataset;
  vid_t n = 0;
  std::size_t cache_capacity_bytes = 0;
  int queries = 0;
  int updates = 0;
  double zipf_exponent = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t compactions = 0;
  std::uint64_t repartitions = 0;
  bool ok = false;
};

std::vector<Record> g_records;
int g_violations = 0;

void emit_json(const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const Record& r = g_records[i];
    out << "  {\"dataset\": \"" << r.dataset << "\", \"n\": " << r.n
        << ", \"cache_capacity_bytes\": " << r.cache_capacity_bytes
        << ", \"queries\": " << r.queries << ", \"updates\": " << r.updates
        << ", \"zipf_exponent\": " << r.zipf_exponent
        << ", \"queries_per_second\": " << r.qps
        << ", \"p50_latency_ms\": " << r.p50_ms
        << ", \"p99_latency_ms\": " << r.p99_ms
        << ", \"cache_hit_rate\": " << r.hit_rate
        << ", \"evictions\": " << r.evictions
        << ", \"invalidations\": " << r.invalidations
        << ", \"compactions\": " << r.compactions
        << ", \"repartitions\": " << r.repartitions
        << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
        << (i + 1 < g_records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "\nwrote " << g_records.size() << " records to " << path << "\n";
}

double percentile(std::vector<double> sorted_already_or_not, double q) {
  std::sort(sorted_already_or_not.begin(), sorted_already_or_not.end());
  if (sorted_already_or_not.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_already_or_not.size() - 1));
  return sorted_already_or_not[idx];
}

/// Train a short distributed run and snapshot it — distributed on purpose:
/// its checkpoint carries mode-specific sections ("traffic", "rank_cpu")
/// the ModelLoader must skip, exercising the any-mode loading contract.
std::string make_checkpoint(const Dataset& ds, int epochs) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(2)
                     .partitioner("gvb")
                     .gcn(cfg)
                     .build();
  trainer->train();
  std::stringstream snapshot;
  trainer->save(snapshot);
  return snapshot.str();
}

/// One Zipf-replay scenario at a fixed cache capacity. Returns the record.
void run_scenario(const Dataset& ds, const serve::ModelLoader& loader,
                  std::size_t cache_bytes, int n_queries, int update_every,
                  double zipf_s, std::uint64_t seed, Table& table) {
  Record rec;
  rec.dataset = ds.name;
  rec.n = ds.n_vertices();
  rec.cache_capacity_bytes = cache_bytes;
  rec.queries = n_queries;
  rec.zipf_exponent = zipf_s;
  rec.ok = true;

  serve::GraphMutator mutator(ds.adjacency);
  mutator.set_compaction_threshold(1024);
  mutator.enable_partition_tracking(
      make_partitioner("gvb")->partition(ds.adjacency, 4), "gvb", {},
      /*imbalance_threshold=*/1.5);
  serve::InferenceEngine engine(loader.model(), ds.features, mutator,
                                cache_bytes);

  Rng rng(seed);
  const ZipfSampler zipf(zipf_s, static_cast<std::uint64_t>(ds.n_vertices()));
  std::vector<std::pair<vid_t, vid_t>> inserted;

  auto random_vertex = [&] {
    return static_cast<vid_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.n_vertices())));
  };

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(n_queries));
  const int check_every = std::max(1, n_queries / 25);
  WallTimer total;
  for (int q = 0; q < n_queries; ++q) {
    if (update_every > 0 && q > 0 && q % update_every == 0) {
      ++rec.updates;
      if (!inserted.empty() && rng.bernoulli(0.5)) {
        const auto idx = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(inserted.size())));
        const auto [u, v] = inserted[idx];
        inserted.erase(inserted.begin() + static_cast<std::ptrdiff_t>(idx));
        mutator.erase_edge(u, v);
      } else {
        const vid_t u = random_vertex();
        const vid_t v = random_vertex();
        if (mutator.insert_edge(u, v, real_t{0.05f})) {
          inserted.emplace_back(u, v);
        }
      }
    }
    const auto target = static_cast<vid_t>(zipf.sample(rng));
    WallTimer t;
    const std::vector<real_t> logits = engine.infer_node(target);
    latencies.push_back(t.seconds());
    if (q % check_every == 0) {
      // Continuous exactness sampling: the cached answer must be bitwise
      // the bypass answer on the CURRENT graph (stale entries fail here).
      if (logits != engine.infer_node_bypass(target)) {
        std::cerr << "CACHED/BYPASS MISMATCH at query " << q << " (node "
                  << target << ", cache " << cache_bytes << "B)\n";
        rec.ok = false;
      }
    }
  }
  const double elapsed = total.seconds();

  // End-of-stream identity chain: batch answers vs the training kernels'
  // full-graph forward on the materialized graph, then across compaction.
  std::vector<vid_t> sample;
  for (int i = 0; i < 32; ++i) sample.push_back(random_vertex());
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

  const Matrix before = engine.infer_batch(sample);
  const Matrix full = engine.full_forward();
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const real_t* a = before.row(static_cast<vid_t>(i));
    const real_t* b = full.row(sample[i]);
    if (!std::equal(a, a + before.n_cols(), b)) {
      std::cerr << "PER-NODE/FULL-FORWARD MISMATCH at node " << sample[i]
                << " (cache " << cache_bytes << "B)\n";
      rec.ok = false;
      break;
    }
  }
  const bool had_overlay = mutator.has_overlay();
  mutator.compact();
  const Matrix after = engine.infer_batch(sample);
  if (!(before == after)) {
    std::cerr << "COMPACTION CHANGED ANSWERS (cache " << cache_bytes
              << "B, overlay " << (had_overlay ? "present" : "empty") << ")\n";
    rec.ok = false;
  }

  const auto& cs = engine.cache_stats();
  rec.qps = elapsed > 0 ? static_cast<double>(n_queries) / elapsed : 0;
  rec.p50_ms = percentile(latencies, 0.50) * 1e3;
  rec.p99_ms = percentile(latencies, 0.99) * 1e3;
  rec.hit_rate = cs.hit_rate();
  rec.evictions = cs.evictions;
  rec.invalidations = cs.invalidations;
  rec.compactions = mutator.stats().compactions;
  rec.repartitions = mutator.stats().repartitions;
  if (!rec.ok) ++g_violations;
  g_records.push_back(rec);

  const std::string cap =
      cache_bytes == 0
          ? "off"
          : (cache_bytes >= (std::size_t{1} << 40)
                 ? "unbounded"
                 : std::to_string(cache_bytes / 1024) + " KiB");
  table.add_row({cap, std::to_string(n_queries), std::to_string(rec.updates),
                 Table::num(rec.qps, 4), ms(rec.p50_ms / 1e3),
                 ms(rec.p99_ms / 1e3),
                 Table::num(rec.hit_rate * 100.0, 3) + "%",
                 std::to_string(rec.evictions),
                 std::to_string(rec.compactions),
                 std::to_string(rec.repartitions),
                 rec.ok ? "bitwise" : "FAIL"});
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  preamble("Serving — Zipf query stream over a mutating graph",
           "Loads a trained checkpoint WITHOUT a Trainer (serve::ModelLoader),\n"
           "then replays a Zipf-distributed per-node query stream interleaved\n"
           "with streaming edge updates, sweeping the aggregation-cache\n"
           "capacity. Cached, cache-bypassed, and post-compaction answers are\n"
           "asserted BITWISE identical to the training kernels' full-graph\n"
           "forward throughout. Exit 1 on violation.");

  const std::uint64_t seed = 20260809;
  std::cout << "workload seed: " << seed << (smoke ? " (smoke)" : "") << "\n";

  const DatasetScale scale = smoke ? DatasetScale::kTiny : DatasetScale::kSmall;
  const Dataset ds = make_amazon_sim(scale);
  const int n_queries = smoke ? 400 : 4000;
  const int update_every = 8;  // one edge update per 8 queries
  const double zipf_s = 1.1;

  const std::string snapshot = make_checkpoint(ds, smoke ? 2 : 5);
  std::istringstream in(snapshot);
  serve::ModelLoader loader(in);
  loader.require_compatible(ds);
  std::cout << "checkpoint: " << snapshot.size() << " bytes, "
            << loader.epochs_trained() << " epochs trained, skipped sections:";
  for (const std::string& s : loader.skipped_sections()) std::cout << " " << s;
  std::cout << "\n";

  // Capacity sweep: disabled / a few hot rows / everything fits. The tiny
  // capacity forces constant eviction pressure; the unbounded one shows
  // the update-invalidation rate as the only source of misses.
  const std::size_t row_bytes =
      static_cast<std::size_t>(ds.n_features()) * sizeof(real_t);
  print_banner(std::cout, ds.name + " — cache capacity sweep (row = " +
                              std::to_string(row_bytes) + " B)");
  Table table({"cache", "queries", "updates", "qps", "p50", "p99", "hit",
               "evict", "compact", "repart", "verdict"});
  run_scenario(ds, loader, 0, n_queries, update_every, zipf_s, seed, table);
  run_scenario(ds, loader, row_bytes * 64, n_queries, update_every, zipf_s,
               seed, table);
  run_scenario(ds, loader, std::size_t{1} << 40, n_queries, update_every,
               zipf_s, seed, table);
  table.print(std::cout);

  emit_json("BENCH_serving.json");
  if (g_violations > 0) {
    std::cerr << g_violations << " serving invariant violation(s)\n";
    return 1;
  }
  std::cout << "all serving identity invariants held\n";
  return 0;
}
